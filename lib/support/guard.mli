(** Fault-containment primitives: deterministic fuel watchdogs and
    atomic file writes.

    Fuel replaces wall-clock watchdogs everywhere determinism matters:
    a budget is a tick counter, fixpoint loops charge it once per
    sweep, and exhaustion raises {!Fuel_exhausted} at the same tick on
    every run, every pool size, every machine. The optimizer installs
    one budget per pass (so a hung fixpoint rolls back that pass); the
    pool can install one per task (so a pathological cell fails
    promptly instead of wedging a whole [bench tables] run). *)

exception Fuel_exhausted of string
(** Raised by {!tick} when a budget runs out; the payload names the
    budget ([what]). *)

exception Deadline_exceeded of string
(** Raised by the ambient deadline check when a wall-clock budget runs
    out; the payload names the deadline ([what]). *)

exception Mem_exceeded of string
(** Raised by {!tick_ambient} when the process-wide memory budget (see
    {!set_mem_budget}) is exceeded; the payload describes heap vs
    budget. *)

type fuel

val fuel : what:string -> budget:int -> fuel
(** A fresh budget of [max 1 budget] ticks named [what]. *)

val remaining : fuel -> int

val tick : fuel -> unit
(** Charge one tick. @raise Fuel_exhausted when the budget hits 0. *)

(** {2 Wall-clock deadlines}

    Fuel is deterministic but knows nothing about latency; a deadline
    is the converse — the compile server's per-request wall-clock
    budget, layered on the same ambient ticking. The monotonic clock is
    read only every 128th {!tick_ambient} (and by {!check_deadlines}),
    so ticking stays cheap on fixpoint hot paths. *)

type deadline

val deadline : what:string -> seconds:float -> deadline
(** A wall-clock budget of [seconds], counting from the call (so a
    deadline created at request admission also covers queue wait). *)

val expired : deadline -> bool

val remaining_s : deadline -> float
(** Seconds left, clamped at [0.]. *)

val with_deadline : deadline -> (unit -> 'a) -> 'a
(** Install [deadline] for the dynamic extent of the thunk (nests like
    {!with_fuel}); the ambient ticking of everything nested under it
    raises {!Deadline_exceeded} once the budget is spent. *)

val check_deadlines : unit -> unit
(** Check every ambient deadline of the current domain right now,
    without the 128-tick throttle.
    @raise Deadline_exceeded if one has expired. *)

(** {2 Ambient budgets}

    A per-domain stack of installed budgets. Fixpoint loops call
    {!tick_ambient} instead of threading a [fuel] parameter through
    every analysis signature; each call charges {e every} installed
    budget, so an outer watchdog bounds all work nested under it. *)

val with_fuel : fuel -> (unit -> 'a) -> 'a
(** Install [fuel] for the dynamic extent of the thunk (re-entrant:
    budgets nest). The installation is per-domain. *)

val tick_ambient : unit -> unit
(** Charge every ambient budget of the current domain (and, every
    128th tick, check its ambient deadlines); no-op when none is
    installed. @raise Fuel_exhausted from the innermost exhausted
    budget. @raise Deadline_exceeded past an ambient deadline. *)

val exhaust_ambient : unit -> 'a
(** Spin on {!tick_ambient} until a budget runs out — the fault
    injector's deterministic stand-in for a hung fixpoint.
    @raise Fuel_exhausted always (immediately when no fuel budget or
    deadline is installed). @raise Deadline_exceeded when an ambient
    deadline fires first. *)

(** {2 Memory watchdog}

    A process-wide major-heap budget for the compile daemon: a [Gc]
    alarm samples the heap after every major collection and sets an
    atomic flag; {!tick_ambient} reads the flag (one atomic load on
    the hot path) and raises {!Mem_exceeded} from whatever request is
    ticking once the heap is over budget — degrading that one request
    instead of letting the OS OOM-kill the daemon. {!mem_level} is the
    admission-side view: the server sheds new work at [`Pressure]
    (default 80% of the budget) before any request has to die. *)

val set_mem_budget : ?shed_fraction:float -> bytes:int option -> unit -> unit
(** Install ([Some bytes]) or remove ([None]) the process-wide
    major-heap budget. [shed_fraction] (default [0.8], clamped to
    [0, 1]) sets the fraction of the budget at which {!mem_level}
    starts reporting [`Pressure]. Idempotent; safe to call again to
    resize. *)

val mem_budget : unit -> int option
(** The installed budget in bytes, if any. *)

val mem_level : unit -> [ `Ok | `Pressure | `Over ]
(** Fresh sample of the major heap against the budget: [`Ok] (or no
    budget installed), [`Pressure] past [shed_fraction * budget],
    [`Over] past the budget itself. Never raises. *)

val mem_heap_bytes : unit -> int
(** Current major-heap size in bytes ([Gc.quick_stat], cheap). *)

val mem_budget_from_env : unit -> int option
(** [NASCENT_MEM_BUDGET] (megabytes, positive integer) as a byte
    budget; [None] when unset or unparseable. *)

(** {2 Atomic writes} *)

val write_atomic : path:string -> string -> unit
(** Write [contents] to [path] via a temp file in the same directory
    and an atomic [rename]: readers see either the old file or the
    complete new one, never a torn write. Raises as [Out_channel] /
    [Sys.rename] do (the temp file is removed on failure). *)

(** {2 Advisory directory locks}

    One daemon per shared on-disk directory (memo cache, journal
    directory). The lock is a POSIX record lock on
    [<dir>/.nascent-lock]: released by the kernel even on [kill -9]
    (so a restarted daemon always reacquires), refused with a clear
    error while another process holds it. A process-local registry
    backs up fcntl's no-self-conflict semantics, so a second acquire
    from the same process is refused too. *)

type dir_lock

val lock_dir : dir:string -> (dir_lock, string) result
(** Create [dir] if needed and take the exclusive advisory lock.
    [Error] carries a human-readable reason (already locked by this or
    another process, permission failure, ...) and leaves nothing
    held. *)

val unlock_dir : dir_lock -> unit
(** Release the lock and close its fd. Idempotent in effect: errors on
    release are swallowed. *)

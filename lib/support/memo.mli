(** Content-addressed result cache for the experiment matrix.

    Every evaluation cell is a pure function of (benchmark source,
    optimizer configuration): repeated [bench] / [verify] / [runtest]
    invocations re-optimize and re-interpret the same pairs from
    scratch. A memo keys each cell by a digest of its inputs and stores
    the computed value in a domain-safe in-memory table, optionally
    backed by an on-disk store (default [_build/.nascent-cache]) so
    warm reruns skip unchanged cells across processes too.

    The cache key MUST cover every input that affects the value —
    including [Config.verify] (see [Config.cache_key]): verifier-on and
    verifier-off runs never share entries. Bump the caller's version
    string when the cached value's shape changes. *)

type 'v t

type counters = {
  hits : int;  (** in-memory or disk hits *)
  disk_hits : int;  (** subset of [hits] served from the disk store *)
  misses : int;  (** recomputations *)
  quarantined : int;
      (** corrupt disk entries detected, moved to [<dir>/quarantine/]
          and re-counted as misses *)
  swaps : int;  (** entries hot-swapped in place via {!replace} *)
}

val key : string list -> string
(** Digest a list of key components (order-sensitive, injective for
    component lists free of ['\000']). *)

val env_disk_dir : unit -> string option
(** The disk-store directory the environment selects —
    [NASCENT_CACHE_DIR], or the default [_build/.nascent-cache] under
    [NASCENT_CACHE=1] — or [None] when the disk store is off. The
    daemon uses this to take an advisory {!Guard.lock_dir} on a cache
    shared between processes. *)

val create : ?disk_dir:string -> ?quarantine_max:int -> name:string -> unit -> 'v t
(** [create ~name ()] makes an in-memory memo. The disk store is
    enabled by [~disk_dir], or — when the argument is omitted — by the
    [NASCENT_CACHE_DIR] environment variable (a directory) or
    [NASCENT_CACHE=1] (the default [_build/.nascent-cache]). Entries
    live under [<dir>/<name>/<key>]; [name] must be filename-safe.

    [?quarantine_max] caps the [<dir>/quarantine/] post-mortem buffer:
    each quarantining prunes the directory to the newest
    [quarantine_max] entries by mtime, so a flaky disk cannot grow it
    unboundedly. Defaults to [NASCENT_QUARANTINE_MAX] or 64; [0] keeps
    nothing. *)

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v
(** Return the cached value for [key], reading through to the disk
    store, or compute, cache and persist it. Safe to call from pool
    workers; concurrent computations of the same fresh key may both
    run (last write wins — values are deterministic, so equal).

    Disk entries carry an embedded content digest; a truncated or
    corrupted entry is detected on read, moved to [<dir>/quarantine/]
    for post-mortems, counted in [counters.quarantined], and the lookup
    degrades to an ordinary miss (recompute and re-persist) instead of
    raising. Entries are written atomically (temp file + rename), so an
    interrupted writer never leaves a torn entry behind. *)

val find_opt : 'v t -> key:string -> 'v option
(** Peek without computing: the in-memory table, then the disk store
    (read-through, corruption quarantined exactly as in
    {!find_or_compute}). A present entry counts as a hit; an absent
    one counts nothing — no computation was forced, so it is not a
    miss. *)

val replace : 'v t -> key:string -> 'v -> unit
(** Atomically replace the cached value for [key] (present or not) in
    memory and on disk, counting the swap in [counters.swaps]. The
    in-memory flip happens under the memo's lock and the disk entry is
    rewritten via temp-file + rename, so a concurrent {!find_opt} /
    {!find_or_compute} — or a crash mid-swap — observes the old entry
    or the new one, never a torn state. The compile service's tier
    upgrade uses this to promote a floor entry to its optimized form
    without ever making the key unavailable. *)

val stats : 'v t -> counters

val clear : 'v t -> unit
(** Drop the in-memory table and reset {!stats} counters. The disk
    store (when enabled) is left untouched. *)

val clear_disk : 'v t -> unit
(** Remove this memo's on-disk entries (no-op without a disk store). *)

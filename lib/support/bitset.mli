(** Fixed-universe mutable bitsets over [0, n).

    Used as the set domain of the check data-flow analyses: the universe
    (every canonical check of a function) is fixed before solving, and
    set operations are word-parallel. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0, n). *)

val full : int -> t
(** [full n] is the complete set over universe [0, n). *)

val universe : t -> int
(** Size of the universe the set ranges over. *)

val copy : t -> t
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit

val fill : t -> unit
(** Set every element of the universe. *)

val union_into : into:t -> t -> unit
val inter_into : into:t -> t -> unit
val diff_into : into:t -> t -> unit

val assign : into:t -> t -> unit
(** [assign ~into src] overwrites [into] with the contents of [src]. *)

val equal : t -> t -> bool
val is_empty : t -> bool
val disjoint : t -> t -> bool
val cardinal : t -> int
val subset : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t
val pp : t Fmt.t

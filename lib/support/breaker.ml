(* Per-key circuit breaker: the compile server's graceful-degradation
   switch. After [threshold] CONSECUTIVE failures recorded against a
   key (a placement scheme), the breaker opens: callers are told to
   fall back (the always-safe NI floor) instead of burning worker time
   on a scheme that keeps faulting. After [cooldown_s] one caller is
   admitted as a probe (half-open); its success closes the breaker,
   its failure re-opens the clock. A probe that never reports back
   (lost to a crash or deadline) re-arms after another cooldown, so
   half-open can never become a permanent fallback.

   Time is an explicit [~now] parameter (monotonic seconds from any
   epoch the caller likes), so the state machine is a pure function of
   its call sequence — unit-testable without sleeping. The table is
   mutex-protected: decide/record run on concurrent worker domains. *)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let state_of_name = function
  | "closed" -> Some Closed
  | "open" -> Some Open
  | "half-open" -> Some Half_open
  | _ -> None

type entry = {
  mutable failures : int; (* consecutive failures while closed *)
  mutable st : state;
  mutable opened_at : float;
      (* Open: when the breaker opened; Half_open: when the current
         probe was issued. Either way "the clock started here" — after
         [cooldown_s] the next decide may (re-)probe. *)
}

type t = {
  threshold : int;
  cooldown_s : float;
  table : (string, entry) Hashtbl.t; (* guarded by [lock] *)
  lock : Mutex.t;
  mutable trips : int; (* lifetime Closed -> Open transitions *)
}

let create ?(threshold = 3) ?(cooldown_s = 2.0) () =
  {
    threshold = max 1 threshold;
    cooldown_s = Float.max 0.0 cooldown_s;
    table = Hashtbl.create 8;
    lock = Mutex.create ();
    trips = 0;
  }

let entry t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
      let e = { failures = 0; st = Closed; opened_at = 0.0 } in
      Hashtbl.replace t.table key e;
      e

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let decide t ~now key =
  locked t @@ fun () ->
  let e = entry t key in
  match e.st with
  | Closed -> `Allow
  | Half_open ->
      (* A probe is in flight — but a probe whose outcome was never
         recorded (its worker crashed, its deadline fired before the
         caller could report) must not wedge the key in fallback
         forever: after another cooldown the probe is re-armed. *)
      if now -. e.opened_at >= t.cooldown_s then begin
        e.opened_at <- now;
        `Probe
      end
      else `Fallback
  | Open ->
      if now -. e.opened_at >= t.cooldown_s then begin
        e.st <- Half_open;
        e.opened_at <- now (* the probe-staleness clock starts now *);
        `Probe
      end
      else `Fallback

let record t ~now key ~ok =
  locked t @@ fun () ->
  let e = entry t key in
  if ok then begin
    e.failures <- 0;
    e.st <- Closed
  end
  else
    match e.st with
    | Half_open ->
        (* failed probe: re-open and restart the cooldown clock *)
        e.st <- Open;
        e.opened_at <- now
    | Open -> e.opened_at <- now
    | Closed ->
        e.failures <- e.failures + 1;
        if e.failures >= t.threshold then begin
          e.st <- Open;
          e.opened_at <- now;
          t.trips <- t.trips + 1
        end

let state t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | None -> Closed
  | Some e -> e.st

let trips t = locked t @@ fun () -> t.trips

let snapshot t =
  locked t @@ fun () ->
  Hashtbl.fold (fun key e acc -> (key, e.st, e.failures) :: acc) t.table []
  |> List.sort compare

let restore t ~now entries =
  locked t @@ fun () ->
  List.iter
    (fun (key, st, failures) ->
      (* A probe in flight when the old process died is lost: restore
         Half_open as Open. [opened_at <- now] restarts the cooldown
         from the restart instant — conservative, and the only sound
         choice since the snapshot's clock epoch died with its
         process. *)
      let st = match st with Half_open -> Open | s -> s in
      Hashtbl.replace t.table key { failures = max 0 failures; st; opened_at = now })
    entries

(* Monotonic timing. [Unix.gettimeofday] is wall-clock time and steps
   backwards under NTP adjustment, which made Table 2/3 compile-time
   columns occasionally negative; bechamel's monotonic clock (a thin
   binding over CLOCK_MONOTONIC) cannot. *)

type counter = int64

let counter () : counter = Monotonic_clock.now ()

let elapsed_ns (c : counter) : int64 = Int64.sub (Monotonic_clock.now ()) c

let elapsed_s (c : counter) : float = Int64.to_float (elapsed_ns c) /. 1e9

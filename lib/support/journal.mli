(** Append-only request journal — the compile daemon's write-ahead log.

    The server appends every {e admitted} request before a worker
    touches it and marks the entry done after the response is written;
    on startup the daemon replays the entries that were admitted but
    never finished through the Memo-backed (idempotent) compile path.
    [kill -9] mid-batch therefore loses zero admitted work: every
    surviving client retries its connection and either hits the warm
    memo (the request was replayed) or is recomputed identically.

    Durability discipline (shared with [Memo]'s disk store and
    [Guard.write_atomic]):
    - every record is a single line carrying an MD5 digest of its
      body, verified on read; a torn or corrupt record — only the
      trailing one can be torn by a crash, but any corrupt line is
      handled — is quarantined to [<dir>/quarantine.log] and skipped,
      never fatal;
    - appends go to an [O_APPEND] fd and are [fsync]'d by default, so
      an admitted request's record survives the process;
    - compaction (startup, and periodically online) rewrites the log
      to pending-only records via [Guard.write_atomic];
    - the journal directory is protected by an advisory
      {!Guard.lock_dir}, so two daemons can never replay (or append
      to) the same journal. *)

type t

type entry = { seq : int; payload : string }
(** An admitted-but-unfinished record: [seq] is the admission order
    (monotonic within and across reopens), [payload] the single-line
    string handed to {!append} (the server stores the request JSON). *)

val openj : ?fsync:bool -> dir:string -> unit -> (t, string) result
(** Open (creating [dir] and the log as needed) and recover the
    journal at [<dir>/journal.log]. Scans the log, quarantines
    torn/corrupt records, drops records whose done-marker is present,
    and compacts the file to the surviving pending records. [Error]
    when the directory lock is held (another live daemon) or on an
    unrecoverable filesystem error. [?fsync] (default [true]) may be
    disabled for tests that hammer the journal. *)

val append : t -> string -> int
(** Record an admitted request; returns its sequence number. Blocks
    until the record is on disk (write + fsync). [payload] must be a
    single line. @raise Invalid_argument if it contains a newline. *)

val mark_done : t -> int -> unit
(** Record that entry [seq] was fully answered. A no-op for a seq
    already done (or never admitted) — replaying an already-done entry
    is harmless. Triggers an online compaction every few hundred
    completions so the log does not grow without bound. *)

val pending : t -> entry list
(** Admitted-but-unfinished entries, in admission (seq) order. *)

val pending_count : t -> int

val quarantined : t -> int
(** Records dropped to [<dir>/quarantine.log] by the opening scan. *)

val compact : t -> unit
(** Rewrite the log to pending-only records now (atomic). *)

val close : t -> unit
(** Compact, release the directory lock and close the log fd. The [t]
    must not be used afterwards. *)

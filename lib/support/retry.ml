(* Exponential backoff with deterministic jitter.

   The client side of the server's admission control: a shed request
   carries a retryable error, and the client backs off exponentially
   before trying again. The jitter that de-synchronizes competing
   clients is a pure function of (seed, attempt) — two runs with the
   same seed sleep the same schedule, so backoff behaviour is
   replayable in tests, while different seeds (different clients)
   spread out. *)

type policy = {
  max_attempts : int; (* total tries, including the first *)
  base_delay_s : float; (* delay before attempt 2 *)
  multiplier : float; (* growth per attempt *)
  max_delay_s : float; (* cap on the un-jittered delay *)
  jitter : float; (* +/- fraction of the delay, in [0, 1] *)
}

let default =
  { max_attempts = 5; base_delay_s = 0.05; multiplier = 2.0; max_delay_s = 1.0; jitter = 0.25 }

(* Uniform-ish in [0, 1): the first 48 bits of an MD5 of (seed, n).
   Cryptographic quality is irrelevant; determinism and spread are the
   point. *)
let unit_float ~seed n =
  let d = Digest.string (Printf.sprintf "retry:%d:%d" seed n) in
  let bits =
    List.fold_left
      (fun acc i -> (acc lsl 8) lor Char.code d.[i])
      0 [ 0; 1; 2; 3; 4; 5 ]
  in
  float_of_int bits /. float_of_int (1 lsl 48)

let delay_s p ~seed ~attempt =
  if attempt < 1 then 0.0
  else
    let raw = p.base_delay_s *. (p.multiplier ** float_of_int (attempt - 1)) in
    let capped = Float.min p.max_delay_s raw in
    let j = Float.max 0.0 (Float.min 1.0 p.jitter) in
    (* factor in [1 - j, 1 + j), deterministic per (seed, attempt) *)
    let factor = 1.0 -. j +. (2.0 *. j *. unit_float ~seed attempt) in
    Float.max 0.0 (capped *. factor)

type 'a outcome = Ok_after of int * 'a | Gave_up of int * string

let run ?(sleep = fun s -> if s > 0.0 then Unix.sleepf s) ?(policy = default) ?max_elapsed_s
    ?clock ~seed f =
  let attempts = max 1 policy.max_attempts in
  (* The elapsed budget caps the whole schedule, not one attempt: with
     it, retry-through-a-daemon-restart cannot wait unboundedly even
     under a generous max_attempts. [?clock] is injectable for tests;
     the default reads the monotonic clock. *)
  let elapsed =
    match clock with
    | Some now ->
        let t0 = now () in
        fun () -> now () -. t0
    | None ->
        let c = Mclock.counter () in
        fun () -> Mclock.elapsed_s c
  in
  let budget_spent () =
    match max_elapsed_s with None -> false | Some b -> elapsed () >= b
  in
  let rec go attempt =
    match f ~attempt with
    | Ok v -> Ok_after (attempt, v)
    | Error (`Fatal msg) -> Gave_up (attempt, msg)
    | Error (`Retryable msg) ->
        if attempt >= attempts then Gave_up (attempt, msg)
        else if budget_spent () then
          Gave_up (attempt, msg ^ " (elapsed retry budget exhausted)")
        else begin
          sleep (delay_s policy ~seed ~attempt);
          go (attempt + 1)
        end
  in
  go 1

(** Semantic analysis for MiniF: symbol tables and type checking.

    Enforced rules the optimizer relies on:
    - scalars pass to subroutines by value, arrays by reference — a
      deliberate simplification of Fortran's uniform by-reference rule
      that keeps scalar data flow alias-free;
    - a do index may not be assigned inside its loop nor reused by a
      nested do (Fortran's rule; the assumption behind loop-limit
      substitution);
    - subscripts and array bounds are integer expressions; conditions
      are logical; numeric types mix int -> real only. *)

type sym_ty = Ast.ty

type sym = Scalar of sym_ty | Array of sym_ty * Ast.dim list

type unit_env = {
  syms : (string, sym) Hashtbl.t;
  params : string list;  (** declaration order; [] for the main unit *)
  unit_ast : Ast.comp_unit;
}

type env = {
  units : (string, unit_env) Hashtbl.t;
  main : string;  (** name of the main program unit *)
}

type error = { msg : string; at : Srcloc.t }

exception Sema_error of error list

val check : Ast.program -> (env, error list) result
val check_exn : Ast.program -> env
val pp_error : error Fmt.t

val find_sym : unit_env -> string -> sym option

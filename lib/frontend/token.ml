(* Tokens of the MiniF language. *)

type t =
  | INT of int
  | REAL of float
  | IDENT of string
  | KW_PROGRAM
  | KW_SUBROUTINE
  | KW_INTEGER
  | KW_REAL
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_ENDIF
  | KW_DO
  | KW_ENDDO
  | KW_WHILE
  | KW_ENDWHILE
  | KW_CALL
  | KW_PRINT
  | KW_RETURN
  | KW_END
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_TRUE
  | KW_FALSE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQ (* = : both assignment and equality, disambiguated by context *)
  | NE (* /= *)
  | LT
  | LE
  | GT
  | GE
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | EOF

let keyword_of_string = function
  | "program" -> Some KW_PROGRAM
  | "subroutine" -> Some KW_SUBROUTINE
  | "integer" -> Some KW_INTEGER
  | "real" -> Some KW_REAL
  | "if" -> Some KW_IF
  | "then" -> Some KW_THEN
  | "else" -> Some KW_ELSE
  | "endif" -> Some KW_ENDIF
  | "do" -> Some KW_DO
  | "enddo" -> Some KW_ENDDO
  | "while" -> Some KW_WHILE
  | "endwhile" -> Some KW_ENDWHILE
  | "call" -> Some KW_CALL
  | "print" -> Some KW_PRINT
  | "return" -> Some KW_RETURN
  | "end" -> Some KW_END
  | "and" -> Some KW_AND
  | "or" -> Some KW_OR
  | "not" -> Some KW_NOT
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let to_string = function
  | INT n -> string_of_int n
  | REAL f -> string_of_float f
  | IDENT s -> s
  | KW_PROGRAM -> "program"
  | KW_SUBROUTINE -> "subroutine"
  | KW_INTEGER -> "integer"
  | KW_REAL -> "real"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_ENDIF -> "endif"
  | KW_DO -> "do"
  | KW_ENDDO -> "enddo"
  | KW_WHILE -> "while"
  | KW_ENDWHILE -> "endwhile"
  | KW_CALL -> "call"
  | KW_PRINT -> "print"
  | KW_RETURN -> "return"
  | KW_END -> "end"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | KW_NOT -> "not"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | EQ -> "="
  | NE -> "/="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | COLON -> ":"
  | EOF -> "<eof>"

(* Hand-written lexer for MiniF.

   Newlines are not significant; `!` and `#` start line comments.
   Identifiers and keywords are case-insensitive (lowered on read),
   matching Fortran convention. *)

exception Error of string * Srcloc.pos

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; pos = 0; line = 1; col = 1 }

let cur_pos lx : Srcloc.pos = { line = lx.line; col = lx.col }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some ('!' | '#') ->
      let rec to_eol () =
        match peek lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | _ -> ()

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let lex_number lx =
  let start = lx.pos in
  let rec digits () =
    match peek lx with
    | Some c when is_digit c ->
        advance lx;
        digits ()
    | _ -> ()
  in
  digits ();
  let is_real =
    (* A '.' starts a fraction only when followed by a digit, so `1.` in a
       dim spec like `a(1:n)` can never arise (we require digits). *)
    match (peek lx, peek2 lx) with
    | Some '.', Some d when is_digit d ->
        advance lx;
        digits ();
        (match peek lx with
        | Some ('e' | 'E') ->
            advance lx;
            (match peek lx with
            | Some ('+' | '-') -> advance lx
            | _ -> ());
            digits ()
        | _ -> ());
        true
    | _ -> false
  in
  let text = String.sub lx.src start (lx.pos - start) in
  if is_real then Token.REAL (float_of_string text)
  else Token.INT (int_of_string text)

let lex_ident lx =
  let start = lx.pos in
  let rec go () =
    match peek lx with
    | Some c when is_alnum c ->
        advance lx;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.lowercase_ascii (String.sub lx.src start (lx.pos - start)) in
  match Token.keyword_of_string text with
  | Some kw -> kw
  | None -> Token.IDENT text

(* Returns the next token together with its start position. *)
let next lx : Token.t * Srcloc.pos =
  skip_ws lx;
  let pos = cur_pos lx in
  match peek lx with
  | None -> (Token.EOF, pos)
  | Some c ->
      let tok =
        if is_digit c then lex_number lx
        else if is_alpha c then lex_ident lx
        else begin
          advance lx;
          match c with
          | '+' -> Token.PLUS
          | '-' -> Token.MINUS
          | '*' -> Token.STAR
          | '/' -> (
              match peek lx with
              | Some '=' ->
                  advance lx;
                  Token.NE
              | _ -> Token.SLASH)
          | '=' -> Token.EQ
          | '<' -> (
              match peek lx with
              | Some '=' ->
                  advance lx;
                  Token.LE
              | _ -> Token.LT)
          | '>' -> (
              match peek lx with
              | Some '=' ->
                  advance lx;
                  Token.GE
              | _ -> Token.GT)
          | '(' -> Token.LPAREN
          | ')' -> Token.RPAREN
          | ',' -> Token.COMMA
          | ':' -> Token.COLON
          | c -> raise (Error (Printf.sprintf "unexpected character %C" c, pos))
        end
      in
      (tok, pos)

let tokenize src =
  let lx = make src in
  let rec go acc =
    let tok, pos = next lx in
    match tok with
    | Token.EOF -> List.rev ((tok, pos) :: acc)
    | _ -> go ((tok, pos) :: acc)
  in
  go []

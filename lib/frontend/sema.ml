(* Semantic analysis for MiniF: symbol tables and type checking.

   Scalars are passed to subroutines by value and arrays by reference —
   a deliberate simplification of Fortran's uniform by-reference rule
   that keeps scalar data flow alias-free (a `call` never silently
   redefines a caller scalar), which the check data-flow analyses rely
   on. Array contents never appear in range expressions, so aliasing of
   arrays is harmless. *)

type sym_ty = Ast.ty

type sym =
  | Scalar of sym_ty
  | Array of sym_ty * Ast.dim list (* one dim record per dimension *)

type unit_env = {
  syms : (string, sym) Hashtbl.t;
  params : string list; (* in declaration order; [] for main *)
  unit_ast : Ast.comp_unit;
}

type env = {
  units : (string, unit_env) Hashtbl.t;
  main : string; (* name of the main program unit *)
}

type error = { msg : string; at : Srcloc.t }

exception Sema_error of error list

let err loc fmt = Format.kasprintf (fun msg -> { msg; at = loc }) fmt

(* Expression types: numeric kinds plus booleans from comparisons. *)
type ety = EInt | EReal | EBool

let ety_of_symty : sym_ty -> ety = function Ast.TInt -> EInt | Ast.TReal -> EReal

let pp_ety ppf = function
  | EInt -> Fmt.string ppf "integer"
  | EReal -> Fmt.string ppf "real"
  | EBool -> Fmt.string ppf "logical"

let find_sym uenv name = Hashtbl.find_opt uenv.syms name

(* Type of an expression; records errors in [errs]. Returns a best-guess
   type on error so checking continues. *)
let rec type_expr uenv errs (e : Ast.expr) : ety =
  match e.desc with
  | Ast.Int _ -> EInt
  | Ast.Real _ -> EReal
  | Ast.Bool _ -> EBool
  | Ast.Var v -> (
      match find_sym uenv v with
      | Some (Scalar ty) -> ety_of_symty ty
      | Some (Array _) ->
          errs := err e.loc "array %s used without subscripts" v :: !errs;
          EInt
      | None ->
          errs := err e.loc "undeclared variable %s" v :: !errs;
          EInt)
  | Ast.Index (a, idxs) -> (
      match find_sym uenv a with
      | Some (Array (ty, dims)) ->
          if List.length idxs <> List.length dims then
            errs :=
              err e.loc "array %s has %d dimension(s) but %d subscript(s) given" a
                (List.length dims) (List.length idxs)
              :: !errs;
          List.iter
            (fun idx ->
              match type_expr uenv errs idx with
              | EInt -> ()
              | t ->
                  errs :=
                    err idx.Ast.loc "subscript of %s must be integer, found %s" a
                      (Fmt.str "%a" pp_ety t)
                    :: !errs)
            idxs;
          ety_of_symty ty
      | Some (Scalar _) ->
          errs := err e.loc "%s is a scalar, not an array" a :: !errs;
          EInt
      | None ->
          errs := err e.loc "undeclared array %s" a :: !errs;
          EInt)
  | Ast.Unary (Ast.Neg, a) -> (
      match type_expr uenv errs a with
      | (EInt | EReal) as t -> t
      | EBool ->
          errs := err e.loc "cannot negate a logical value" :: !errs;
          EInt)
  | Ast.Unary (Ast.Not, a) ->
      (match type_expr uenv errs a with
      | EBool -> ()
      | t -> errs := err e.loc "not requires a logical operand, found %s" (Fmt.str "%a" pp_ety t) :: !errs);
      EBool
  | Ast.Binary (op, a, b) -> (
      let ta = type_expr uenv errs a in
      let tb = type_expr uenv errs b in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div -> (
          match (ta, tb) with
          | EInt, EInt -> EInt
          | (EInt | EReal), (EInt | EReal) -> EReal
          | _ ->
              errs := err e.loc "arithmetic on logical values" :: !errs;
              EInt)
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          (match (ta, tb) with
          | (EInt | EReal), (EInt | EReal) -> ()
          | _ -> errs := err e.loc "comparison of logical values" :: !errs);
          EBool
      | Ast.And | Ast.Or ->
          (match (ta, tb) with
          | EBool, EBool -> ()
          | _ -> errs := err e.loc "and/or require logical operands" :: !errs);
          EBool)
  | Ast.Intrinsic (i, args) -> (
      let tys = List.map (type_expr uenv errs) args in
      let arity =
        match i with Ast.Imod | Ast.Imin | Ast.Imax -> 2 | Ast.Iabs -> 1
      in
      if List.length args <> arity then
        errs :=
          err e.loc "%s expects %d argument(s), got %d" (Ast.intrinsic_name i) arity
            (List.length args)
          :: !errs;
      if List.exists (fun t -> t = EBool) tys then
        errs := err e.loc "%s requires numeric arguments" (Ast.intrinsic_name i) :: !errs;
      match i with
      | Ast.Imod -> EInt (* integer mod only *)
      | Ast.Imin | Ast.Imax | Ast.Iabs ->
          if List.exists (fun t -> t = EReal) tys then EReal else EInt)

let expect_ety uenv errs expected (e : Ast.expr) what =
  let t = type_expr uenv errs e in
  if t <> expected && not (expected = EReal && t = EInt) then
    errs :=
      err e.loc "%s must be %s, found %s" what
        (Fmt.str "%a" pp_ety expected)
        (Fmt.str "%a" pp_ety t)
      :: !errs

(* [active] holds the do-indices of the enclosing loops: Fortran
   forbids assigning a do variable inside its loop (and reusing it as a
   nested do index) — the assumption behind loop-limit substitution. *)
let rec check_stmt env uenv ?(active = []) errs (s : Ast.stmt) =
  match s.sdesc with
  | Ast.Assign (v, e) -> (
      if List.mem v active then
        errs := err s.sloc "cannot assign to active do index %s" v :: !errs;
      match find_sym uenv v with
      | Some (Scalar ty) ->
          let te = type_expr uenv errs e in
          let tv = ety_of_symty ty in
          if te = EBool then
            errs := err s.sloc "cannot assign a logical value to %s" v :: !errs
          else if tv = EInt && te = EReal then
            errs := err s.sloc "cannot assign real expression to integer %s" v :: !errs
      | Some (Array _) ->
          errs := err s.sloc "assignment to array %s without subscripts" v :: !errs
      | None -> errs := err s.sloc "undeclared variable %s" v :: !errs)
  | Ast.Store (a, idxs, e) -> (
      (* Reuse Index checking for the subscripts and dimensionality. *)
      let fake = { Ast.desc = Ast.Index (a, idxs); loc = s.sloc } in
      let ta = type_expr uenv errs fake in
      let te = type_expr uenv errs e in
      match (ta, te) with
      | _, EBool -> errs := err s.sloc "cannot store a logical value" :: !errs
      | EInt, EReal ->
          errs := err s.sloc "cannot store real expression into integer array %s" a :: !errs
      | _ -> ())
  | Ast.If (c, t, f) ->
      expect_ety uenv errs EBool c "if condition";
      List.iter (check_stmt env uenv ~active errs) t;
      List.iter (check_stmt env uenv ~active errs) f
  | Ast.Do { index; lo; hi; step; body } ->
      (match find_sym uenv index with
      | Some (Scalar Ast.TInt) -> ()
      | Some _ -> errs := err s.sloc "do index %s must be an integer scalar" index :: !errs
      | None -> errs := err s.sloc "undeclared do index %s" index :: !errs);
      if List.mem index active then
        errs := err s.sloc "do index %s is already active in an enclosing loop" index :: !errs;
      expect_ety uenv errs EInt lo "do lower bound";
      expect_ety uenv errs EInt hi "do upper bound";
      Option.iter (fun e -> expect_ety uenv errs EInt e "do step") step;
      List.iter (check_stmt env uenv ~active:(index :: active) errs) body
  | Ast.While (c, body) ->
      expect_ety uenv errs EBool c "while condition";
      List.iter (check_stmt env uenv ~active errs) body
  | Ast.Call (name, args) -> (
      match Hashtbl.find_opt env.units name with
      | None -> errs := err s.sloc "call to undeclared subroutine %s" name :: !errs
      | Some callee ->
          let nparams = List.length callee.params in
          if List.length args <> nparams then
            errs :=
              err s.sloc "subroutine %s expects %d argument(s), got %d" name nparams
                (List.length args)
              :: !errs
          else
            List.iter2
              (fun (arg : Ast.expr) pname ->
                match Hashtbl.find_opt callee.syms pname with
                | Some (Array (pty, pdims)) -> (
                    (* Array parameters: argument must be a bare array
                       name of the same element type and rank. *)
                    match arg.desc with
                    | Ast.Var aname -> (
                        match find_sym uenv aname with
                        | Some (Array (aty, adims)) ->
                            if aty <> pty then
                              errs :=
                                err arg.loc "array argument %s element type mismatch" aname
                                :: !errs;
                            if List.length adims <> List.length pdims then
                              errs :=
                                err arg.loc "array argument %s rank mismatch" aname :: !errs
                        | _ ->
                            errs :=
                              err arg.loc "argument for array parameter %s must be an array"
                                pname
                              :: !errs)
                    | _ ->
                        errs :=
                          err arg.loc "argument for array parameter %s must be an array name"
                            pname
                          :: !errs)
                | Some (Scalar ty) -> (
                    let ta = type_expr uenv errs arg in
                    match (ety_of_symty ty, ta) with
                    | _, EBool ->
                        errs := err arg.loc "cannot pass a logical value" :: !errs
                    | EInt, EReal ->
                        errs :=
                          err arg.loc "cannot pass real argument for integer parameter %s"
                            pname
                          :: !errs
                    | _ -> ())
                | None ->
                    errs :=
                      err s.sloc "subroutine %s does not declare parameter %s" name pname
                      :: !errs)
              args callee.params)
  | Ast.Print e ->
      let t = type_expr uenv errs e in
      ignore t
  | Ast.Return -> ()

(* Dimension bound expressions may only reference integer scalars
   (typically parameters) and constants. *)
let check_dims uenv errs (d : Ast.decl) =
  List.iter
    (fun { Ast.dlo; dhi } ->
      Option.iter (fun e -> expect_ety uenv errs EInt e "array bound") dlo;
      expect_ety uenv errs EInt dhi "array bound")
    d.ddims

let build_unit_env errs (u : Ast.comp_unit) : unit_env =
  let syms = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.decl) ->
      if Hashtbl.mem syms d.dname then
        errs := err d.dloc "duplicate declaration of %s" d.dname :: !errs
      else if Ast.intrinsic_of_string d.dname <> None then
        errs := err d.dloc "%s is a reserved intrinsic name" d.dname :: !errs
      else
        Hashtbl.replace syms d.dname
          (if d.ddims = [] then Scalar d.dty else Array (d.dty, d.ddims)))
    u.udecls;
  let params = match u.ukind with Ast.Main -> [] | Ast.Subroutine ps -> ps in
  List.iter
    (fun pname ->
      if not (Hashtbl.mem syms pname) then
        errs := err u.uloc "parameter %s of %s has no type declaration" pname u.uname :: !errs)
    params;
  { syms; params; unit_ast = u }

let check (prog : Ast.program) : (env, error list) result =
  let errs = ref [] in
  let units = Hashtbl.create 8 in
  let mains = ref [] in
  List.iter
    (fun (u : Ast.comp_unit) ->
      if Hashtbl.mem units u.uname then
        errs := err u.uloc "duplicate unit name %s" u.uname :: !errs;
      let uenv = build_unit_env errs u in
      Hashtbl.replace units u.uname uenv;
      if u.ukind = Ast.Main then mains := u.uname :: !mains)
    prog.units;
  let main =
    match !mains with
    | [ m ] -> m
    | [] ->
        errs := err Srcloc.dummy "no main program unit" :: !errs;
        ""
    | m :: _ ->
        errs := err Srcloc.dummy "multiple main program units" :: !errs;
        m
  in
  let env = { units; main } in
  Hashtbl.iter
    (fun _ uenv ->
      List.iter (check_dims uenv errs) uenv.unit_ast.udecls;
      List.iter (check_stmt env uenv errs) uenv.unit_ast.ubody)
    units;
  if !errs = [] then Ok env else Error (List.rev !errs)

let check_exn prog =
  match check prog with Ok env -> env | Error es -> raise (Sema_error es)

let pp_error ppf { msg; at } = Fmt.pf ppf "%a: %s" Srcloc.pp at msg

(* Recursive-descent parser for MiniF.

   The grammar is LL(2); the only places needing a second token of
   lookahead are distinguishing `x = e` from `a(i) = e` statements. *)

exception Error of string * Srcloc.pos

type t = { toks : (Token.t * Srcloc.pos) array; mutable cur : int }

let make src = { toks = Array.of_list (Lexer.tokenize src); cur = 0 }

let peek p = fst p.toks.(p.cur)
let peek_pos p = snd p.toks.(p.cur)

let peek2 p =
  if p.cur + 1 < Array.length p.toks then fst p.toks.(p.cur + 1) else Token.EOF

let advance p = if p.cur < Array.length p.toks - 1 then p.cur <- p.cur + 1

let error p msg = raise (Error (msg, peek_pos p))

let expect p tok =
  if peek p = tok then advance p
  else
    error p
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek p)))

let expect_ident p =
  match peek p with
  | Token.IDENT s ->
      advance p;
      s
  | t -> error p (Printf.sprintf "expected identifier but found %s" (Token.to_string t))

let loc_here p : Srcloc.t =
  let pos = peek_pos p in
  Srcloc.make ~start:pos ~stop:pos

(* --- expressions ---------------------------------------------------- *)

let mk desc loc : Ast.expr = { desc; loc }

let rec parse_expr p = parse_or p

and parse_or p =
  let lhs = parse_and p in
  let rec go lhs =
    match peek p with
    | Token.KW_OR ->
        let loc = loc_here p in
        advance p;
        let rhs = parse_and p in
        go (mk (Ast.Binary (Ast.Or, lhs, rhs)) loc)
    | _ -> lhs
  in
  go lhs

and parse_and p =
  let lhs = parse_not p in
  let rec go lhs =
    match peek p with
    | Token.KW_AND ->
        let loc = loc_here p in
        advance p;
        let rhs = parse_not p in
        go (mk (Ast.Binary (Ast.And, lhs, rhs)) loc)
    | _ -> lhs
  in
  go lhs

and parse_not p =
  match peek p with
  | Token.KW_NOT ->
      let loc = loc_here p in
      advance p;
      let e = parse_not p in
      mk (Ast.Unary (Ast.Not, e)) loc
  | _ -> parse_rel p

and parse_rel p =
  let lhs = parse_addsub p in
  let op =
    match peek p with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      let loc = loc_here p in
      advance p;
      let rhs = parse_addsub p in
      mk (Ast.Binary (op, lhs, rhs)) loc

and parse_addsub p =
  let lhs = parse_muldiv p in
  let rec go lhs =
    match peek p with
    | Token.PLUS ->
        let loc = loc_here p in
        advance p;
        go (mk (Ast.Binary (Ast.Add, lhs, parse_muldiv p)) loc)
    | Token.MINUS ->
        let loc = loc_here p in
        advance p;
        go (mk (Ast.Binary (Ast.Sub, lhs, parse_muldiv p)) loc)
    | _ -> lhs
  in
  go lhs

and parse_muldiv p =
  let lhs = parse_unary p in
  let rec go lhs =
    match peek p with
    | Token.STAR ->
        let loc = loc_here p in
        advance p;
        go (mk (Ast.Binary (Ast.Mul, lhs, parse_unary p)) loc)
    | Token.SLASH ->
        let loc = loc_here p in
        advance p;
        go (mk (Ast.Binary (Ast.Div, lhs, parse_unary p)) loc)
    | _ -> lhs
  in
  go lhs

and parse_unary p =
  match peek p with
  | Token.MINUS ->
      let loc = loc_here p in
      advance p;
      mk (Ast.Unary (Ast.Neg, parse_unary p)) loc
  | _ -> parse_primary p

and parse_primary p =
  let loc = loc_here p in
  match peek p with
  | Token.INT n ->
      advance p;
      mk (Ast.Int n) loc
  | Token.REAL f ->
      advance p;
      mk (Ast.Real f) loc
  | Token.KW_TRUE ->
      advance p;
      mk (Ast.Bool true) loc
  | Token.KW_FALSE ->
      advance p;
      mk (Ast.Bool false) loc
  | Token.LPAREN ->
      advance p;
      let e = parse_expr p in
      expect p Token.RPAREN;
      e
  | Token.IDENT name -> (
      advance p;
      match peek p with
      | Token.LPAREN -> (
          advance p;
          let args = parse_expr_list p in
          expect p Token.RPAREN;
          match Ast.intrinsic_of_string name with
          | Some i -> mk (Ast.Intrinsic (i, args)) loc
          | None -> mk (Ast.Index (name, args)) loc)
      | _ -> mk (Ast.Var name) loc)
  | t -> error p (Printf.sprintf "expected expression but found %s" (Token.to_string t))

and parse_expr_list p =
  let e = parse_expr p in
  match peek p with
  | Token.COMMA ->
      advance p;
      e :: parse_expr_list p
  | _ -> [ e ]

(* --- declarations --------------------------------------------------- *)

let parse_dim p : Ast.dim =
  let e1 = parse_expr p in
  match peek p with
  | Token.COLON ->
      advance p;
      let e2 = parse_expr p in
      { dlo = Some e1; dhi = e2 }
  | _ -> { dlo = None; dhi = e1 }

let parse_declarator p ty : Ast.decl =
  let dloc = loc_here p in
  let name = expect_ident p in
  let ddims =
    match peek p with
    | Token.LPAREN ->
        advance p;
        let rec dims () =
          let d = parse_dim p in
          match peek p with
          | Token.COMMA ->
              advance p;
              d :: dims ()
          | _ -> [ d ]
        in
        let ds = dims () in
        expect p Token.RPAREN;
        ds
    | _ -> []
  in
  { Ast.dname = name; dty = ty; ddims; dloc }

let rec parse_decls p acc =
  match peek p with
  | Token.KW_INTEGER | Token.KW_REAL ->
      let ty = if peek p = Token.KW_INTEGER then Ast.TInt else Ast.TReal in
      advance p;
      let rec declarators acc =
        let d = parse_declarator p ty in
        match peek p with
        | Token.COMMA ->
            advance p;
            declarators (d :: acc)
        | _ -> d :: acc
      in
      parse_decls p (declarators acc)
  | _ -> List.rev acc

(* --- statements ----------------------------------------------------- *)

let rec parse_stmts p =
  match peek p with
  | Token.IDENT _ | Token.KW_IF | Token.KW_DO | Token.KW_WHILE | Token.KW_CALL
  | Token.KW_PRINT | Token.KW_RETURN ->
      let s = parse_stmt p in
      s :: parse_stmts p
  | _ -> []

and parse_stmt p : Ast.stmt =
  let sloc = loc_here p in
  match peek p with
  | Token.IDENT name -> (
      match peek2 p with
      | Token.EQ ->
          advance p;
          advance p;
          let e = parse_expr p in
          { Ast.sdesc = Ast.Assign (name, e); sloc }
      | Token.LPAREN ->
          advance p;
          advance p;
          let idxs = parse_expr_list p in
          expect p Token.RPAREN;
          expect p Token.EQ;
          let e = parse_expr p in
          { Ast.sdesc = Ast.Store (name, idxs, e); sloc }
      | t ->
          error p
            (Printf.sprintf "expected = or ( after identifier, found %s"
               (Token.to_string t)))
  | Token.KW_IF ->
      advance p;
      let cond = parse_expr p in
      expect p Token.KW_THEN;
      let then_ = parse_stmts p in
      let else_ =
        match peek p with
        | Token.KW_ELSE ->
            advance p;
            parse_stmts p
        | _ -> []
      in
      expect p Token.KW_ENDIF;
      { Ast.sdesc = Ast.If (cond, then_, else_); sloc }
  | Token.KW_DO ->
      advance p;
      let index = expect_ident p in
      expect p Token.EQ;
      let lo = parse_expr p in
      expect p Token.COMMA;
      let hi = parse_expr p in
      let step =
        match peek p with
        | Token.COMMA ->
            advance p;
            Some (parse_expr p)
        | _ -> None
      in
      let body = parse_stmts p in
      expect p Token.KW_ENDDO;
      { Ast.sdesc = Ast.Do { index; lo; hi; step; body }; sloc }
  | Token.KW_WHILE ->
      advance p;
      let cond = parse_expr p in
      expect p Token.KW_DO;
      let body = parse_stmts p in
      expect p Token.KW_ENDWHILE;
      { Ast.sdesc = Ast.While (cond, body); sloc }
  | Token.KW_CALL ->
      advance p;
      let name = expect_ident p in
      let args =
        match peek p with
        | Token.LPAREN ->
            advance p;
            let args =
              match peek p with
              | Token.RPAREN -> []
              | _ -> parse_expr_list p
            in
            expect p Token.RPAREN;
            args
        | _ -> []
      in
      { Ast.sdesc = Ast.Call (name, args); sloc }
  | Token.KW_PRINT ->
      advance p;
      let e = parse_expr p in
      { Ast.sdesc = Ast.Print e; sloc }
  | Token.KW_RETURN ->
      advance p;
      { Ast.sdesc = Ast.Return; sloc }
  | t -> error p (Printf.sprintf "expected statement but found %s" (Token.to_string t))

(* --- compilation units ---------------------------------------------- *)

let parse_unit p : Ast.comp_unit =
  let uloc = loc_here p in
  match peek p with
  | Token.KW_PROGRAM ->
      advance p;
      let uname = expect_ident p in
      let udecls = parse_decls p [] in
      let ubody = parse_stmts p in
      expect p Token.KW_END;
      { Ast.uname; ukind = Ast.Main; udecls; ubody; uloc }
  | Token.KW_SUBROUTINE ->
      advance p;
      let uname = expect_ident p in
      let params =
        match peek p with
        | Token.LPAREN ->
            advance p;
            let rec go () =
              match peek p with
              | Token.RPAREN -> []
              | _ ->
                  let id = expect_ident p in
                  if peek p = Token.COMMA then begin
                    advance p;
                    id :: go ()
                  end
                  else [ id ]
            in
            let ps = go () in
            expect p Token.RPAREN;
            ps
        | _ -> []
      in
      let udecls = parse_decls p [] in
      let ubody = parse_stmts p in
      expect p Token.KW_END;
      { Ast.uname; ukind = Ast.Subroutine params; udecls; ubody; uloc }
  | t ->
      error p
        (Printf.sprintf "expected program or subroutine, found %s" (Token.to_string t))

let parse_program src : Ast.program =
  let p = make src in
  let rec units acc =
    match peek p with
    | Token.EOF -> List.rev acc
    | _ -> units (parse_unit p :: acc)
  in
  { Ast.units = units [] }

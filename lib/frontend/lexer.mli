(** Hand-written lexer for MiniF.

    Newlines are not significant; [!] and [#] start line comments;
    identifiers and keywords are case-insensitive (Fortran
    convention). *)

exception Error of string * Srcloc.pos

type t

val make : string -> t

val next : t -> Token.t * Srcloc.pos
(** The next token and its start position; returns [EOF] at the end
    (repeatedly).
    @raise Error on an unexpected character. *)

val tokenize : string -> (Token.t * Srcloc.pos) list
(** The whole token stream, ending with [EOF].
    @raise Error on an unexpected character. *)

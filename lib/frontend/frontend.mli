(** Top-level frontend entry points: MiniF source to checked AST. *)

type error =
  | Lex_error of string * Srcloc.pos
  | Parse_error of string * Srcloc.pos
  | Sema_errors of Sema.error list

val pp_error : error Fmt.t

val parse : string -> (Ast.program, error) result
(** Lex and parse only. *)

val analyze : string -> (Ast.program * Sema.env, error) result
(** Parse and type-check; the usual entry point. *)

val analyze_exn : string -> Ast.program * Sema.env
(** @raise Failure with a rendered message on any error. *)

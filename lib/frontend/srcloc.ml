(* Source positions and spans for diagnostics. *)

type pos = { line : int; col : int }

type t = { start : pos; stop : pos }

let dummy = { start = { line = 0; col = 0 }; stop = { line = 0; col = 0 } }

let make ~start ~stop = { start; stop }

let merge a b = { start = a.start; stop = b.stop }

let pp ppf { start; _ } = Fmt.pf ppf "%d:%d" start.line start.col

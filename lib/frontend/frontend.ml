(* Top-level frontend entry points. *)

type error =
  | Lex_error of string * Srcloc.pos
  | Parse_error of string * Srcloc.pos
  | Sema_errors of Sema.error list

let pp_error ppf = function
  | Lex_error (msg, pos) -> Fmt.pf ppf "lex error at %d:%d: %s" pos.Srcloc.line pos.Srcloc.col msg
  | Parse_error (msg, pos) ->
      Fmt.pf ppf "parse error at %d:%d: %s" pos.Srcloc.line pos.Srcloc.col msg
  | Sema_errors es -> Fmt.pf ppf "@[<v>%a@]" (Fmt.list Sema.pp_error) es

let parse src : (Ast.program, error) result =
  match Parser.parse_program src with
  | prog -> Ok prog
  | exception Lexer.Error (msg, pos) -> Error (Lex_error (msg, pos))
  | exception Parser.Error (msg, pos) -> Error (Parse_error (msg, pos))

(* Parse and type-check; the usual entry point. *)
let analyze src : (Ast.program * Sema.env, error) result =
  match parse src with
  | Error e -> Error e
  | Ok prog -> (
      match Sema.check prog with
      | Ok env -> Ok (prog, env)
      | Error es -> Error (Sema_errors es))

let analyze_exn src =
  match analyze src with
  | Ok r -> r
  | Error e -> failwith (Fmt.str "%a" pp_error e)

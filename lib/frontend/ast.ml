(* Abstract syntax of MiniF, the Fortran-like source language.

   MiniF covers exactly the constructs the range-check optimizer cares
   about: multi-dimensional arrays with declared bounds, counted [do]
   loops, [while] loops (which defeat safe-earliest placement, paper
   section 3.3), conditionals, and subroutines. *)

type ty = TInt | TReal

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

(* Intrinsic functions; these names cannot be used as arrays. *)
type intrinsic = Imod | Imin | Imax | Iabs

type expr = { desc : expr_desc; loc : Srcloc.t }

and expr_desc =
  | Int of int
  | Real of float
  | Bool of bool
  | Var of string
  | Index of string * expr list (* array element read: a(i, j) *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Intrinsic of intrinsic * expr list

type stmt = { sdesc : stmt_desc; sloc : Srcloc.t }

and stmt_desc =
  | Assign of string * expr
  | Store of string * expr list * expr (* a(i, j) = e *)
  | If of expr * stmt list * stmt list
  | Do of do_loop
  | While of expr * stmt list
  | Call of string * expr list
  | Print of expr
  | Return

and do_loop = {
  index : string;
  lo : expr;
  hi : expr;
  step : expr option; (* defaults to 1 *)
  body : stmt list;
}

(* One dimension of an array declaration; Fortran default lower bound 1. *)
type dim = { dlo : expr option; dhi : expr }

type decl = {
  dname : string;
  dty : ty;
  ddims : dim list; (* [] for scalars *)
  dloc : Srcloc.t;
}

type unit_kind = Main | Subroutine of string list (* parameter names *)

type comp_unit = {
  uname : string;
  ukind : unit_kind;
  udecls : decl list;
  ubody : stmt list;
  uloc : Srcloc.t;
}

type program = { units : comp_unit list }

let intrinsic_of_string = function
  | "mod" -> Some Imod
  | "min" -> Some Imin
  | "max" -> Some Imax
  | "abs" -> Some Iabs
  | _ -> None

let intrinsic_name = function
  | Imod -> "mod"
  | Imin -> "min"
  | Imax -> "max"
  | Iabs -> "abs"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"

let rec pp_expr ppf (e : expr) =
  match e.desc with
  | Int n -> Fmt.int ppf n
  | Real f -> Fmt.float ppf f
  | Bool b -> Fmt.bool ppf b
  | Var v -> Fmt.string ppf v
  | Index (a, idxs) -> Fmt.pf ppf "%s(%a)" a Fmt.(list ~sep:comma pp_expr) idxs
  | Unary (Neg, e) -> Fmt.pf ppf "(-%a)" pp_expr e
  | Unary (Not, e) -> Fmt.pf ppf "(not %a)" pp_expr e
  | Binary (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Intrinsic (i, args) ->
      Fmt.pf ppf "%s(%a)" (intrinsic_name i) Fmt.(list ~sep:comma pp_expr) args

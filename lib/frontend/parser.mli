(** Recursive-descent parser for MiniF. The grammar is LL(2): only
    distinguishing [x = e] from [a(i) = e] needs the second token. *)

exception Error of string * Srcloc.pos

val parse_program : string -> Ast.program
(** @raise Error on a syntax error, {!Lexer.Error} on a lexical one. *)

(** Instrumented IR interpreter.

    Stands in for the paper's instrumented-C back-end: it executes the
    program and reports {e dynamic counts} — instruction units and
    range checks — the measurements behind Tables 1–3.

    Counting model:
    - every evaluated expression node costs one instruction unit, plus
      one unit per executed non-check instruction and terminator;
    - an executed [Check] counts as one range check (checks are counted
      separately from instructions, as in the paper);
    - a [Cond_check] evaluates its guard (instruction units) and counts
      one range check only when the guard holds.

    Semantics: scalars are zero-initialized and passed by value; arrays
    are allocated from their (entry-evaluated) declared dims, passed by
    reference, and addressed column-major through the callee's own
    dims. A failed check raises a trap; integer division by zero and
    out-of-storage accesses (possible only if checking was subverted)
    are reported as errors, distinct from traps. *)

type outcome = {
  printed : Value.t list;  (** observable output, in order *)
  trap : string option;  (** range-check trap, if any *)
  error : string option;  (** non-trap runtime error *)
  instrs : int;  (** dynamic instruction units (non-check) *)
  checks : int;  (** dynamic range checks executed *)
  cond_guards : int;  (** conditional-check guard evaluations *)
  fuel_exhausted : bool;
}

val default_fuel : int

val run : ?fuel:int -> Nascent_ir.Program.t -> outcome
(** Execute from the main program unit. Never raises: traps, errors and
    fuel exhaustion are reported in the outcome. *)

val pp_outcome : outcome Fmt.t

(* Instrumented IR interpreter.

   Stands in for the paper's instrumented-C back-end: it executes the
   program and reports *dynamic counts* — instruction units and range
   checks — which are the measurements behind Tables 1–3.

   Counting model:
   - every evaluated expression node costs one instruction unit;
   - every non-check instruction costs one additional unit (the
     store/branch/call itself);
   - an executed [Check] counts as one range check (not as instruction
     units — the paper keeps the two counts separate);
   - a [Cond_check] evaluates its guard (instruction units) and counts
     one range check only when the guard holds. *)

module Ir = Nascent_ir
module Check = Nascent_checks.Check
module Atom = Nascent_checks.Atom
open Ir.Types
open Value

exception Trap of string
exception Runtime_error of string
exception Out_of_fuel

type counters = {
  mutable instrs : int;
  mutable checks : int;
  mutable cond_guards : int; (* cond-check guard evaluations *)
}

type outcome = {
  printed : Value.t list;
  trap : string option;
  error : string option; (* non-trap runtime error (e.g. division by zero) *)
  instrs : int;
  checks : int;
  cond_guards : int;
  fuel_exhausted : bool;
}

(* Array storage: flat payload plus the evaluated dimensions used for
   addressing. Arrays are passed by reference: the payload is shared
   with the callee, which addresses it through its own declared dims. *)
type storage = { data : Value.t array; mutable dims : (int * int) list }
(* [dims = []] marks a parameter array whose callee-side dims have not
   been evaluated yet (they are computed on first touch, after the
   entry block has assigned any bound temps). MiniF arrays always have
   at least one dimension, so [] is unambiguous. *)

type frame = {
  func : Ir.Func.t;
  scalars : Value.t array; (* indexed by vid *)
  arr_store : (int, storage) Hashtbl.t; (* aid -> storage *)
}

type state = {
  prog : Ir.Program.t;
  counters : counters;
  mutable printed : Value.t list;
  mutable fuel : int;
}

let charge st n =
  st.counters.instrs <- st.counters.instrs + n;
  st.fuel <- st.fuel - n;
  if st.fuel < 0 then raise Out_of_fuel

let bound_value fr = function
  | Bconst n -> n
  | Bvar v -> to_int fr.scalars.(v.vid)

let promote_pair a b =
  match (a, b) with
  | VInt x, VReal y -> (VReal (float_of_int x), VReal y)
  | VReal x, VInt y -> (VReal x, VReal (float_of_int y))
  | _ -> (a, b)

let arith_error name = raise (Runtime_error name)

let rec eval st fr (e : expr) : Value.t =
  charge st 1;
  match e with
  | Cint n -> VInt n
  | Creal f -> VReal f
  | Cbool b -> VBool b
  | Evar v -> fr.scalars.(v.vid)
  | Eload (a, idxs) ->
      let vals = List.map (fun i -> to_int (eval st fr i)) idxs in
      let s = storage_of () fr a in
      s.data.(offset_of fr a s vals)
  | Eun (op, a) -> (
      let v = eval st fr a in
      match (op, v) with
      | Neg, VInt n -> VInt (-n)
      | Neg, VReal f -> VReal (-.f)
      | Not, VBool b -> VBool (not b)
      | Abs, VInt n -> VInt (abs n)
      | Abs, VReal f -> VReal (Float.abs f)
      | _ -> arith_error "ill-typed unary operation")
  | Ebin (op, a, b) -> (
      let va = eval st fr a in
      let vb = eval st fr b in
      match op with
      | And -> VBool (to_bool va && to_bool vb)
      | Or -> VBool (to_bool va || to_bool vb)
      | _ -> (
          let va, vb = promote_pair va vb in
          match (op, va, vb) with
          | Add, VInt x, VInt y -> VInt (x + y)
          | Add, VReal x, VReal y -> VReal (x +. y)
          | Sub, VInt x, VInt y -> VInt (x - y)
          | Sub, VReal x, VReal y -> VReal (x -. y)
          | Mul, VInt x, VInt y -> VInt (x * y)
          | Mul, VReal x, VReal y -> VReal (x *. y)
          | Div, VInt _, VInt 0 -> arith_error "integer division by zero"
          | Div, VInt x, VInt y -> VInt (x / y)
          | Div, VReal x, VReal y -> VReal (x /. y)
          | Mod, VInt _, VInt 0 -> arith_error "mod by zero"
          | Mod, VInt x, VInt y -> VInt (x mod y)
          | Min, VInt x, VInt y -> VInt (min x y)
          | Min, VReal x, VReal y -> VReal (Float.min x y)
          | Max, VInt x, VInt y -> VInt (max x y)
          | Max, VReal x, VReal y -> VReal (Float.max x y)
          | Eq, VInt x, VInt y -> VBool (x = y)
          | Eq, VReal x, VReal y -> VBool (x = y)
          | Ne, VInt x, VInt y -> VBool (x <> y)
          | Ne, VReal x, VReal y -> VBool (x <> y)
          | Lt, VInt x, VInt y -> VBool (x < y)
          | Lt, VReal x, VReal y -> VBool (x < y)
          | Le, VInt x, VInt y -> VBool (x <= y)
          | Le, VReal x, VReal y -> VBool (x <= y)
          | Gt, VInt x, VInt y -> VBool (x > y)
          | Gt, VReal x, VReal y -> VBool (x > y)
          | Ge, VInt x, VInt y -> VBool (x >= y)
          | Ge, VReal x, VReal y -> VBool (x >= y)
          | _ -> arith_error "ill-typed binary operation"))

and storage_of () fr (a : arr) : storage =
  match Hashtbl.find_opt fr.arr_store a.aid with
  | Some s ->
      if s.dims = [] then
        s.dims <-
          List.map (fun (lo, hi) -> (bound_value fr lo, bound_value fr hi)) a.adims;
      s
  | None ->
      (* First touch: evaluate the declared dims (bound temps were
         assigned during entry-block execution, before any access). *)
      let dims =
        List.map (fun (lo, hi) -> (bound_value fr lo, bound_value fr hi)) a.adims
      in
      let size =
        List.fold_left (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1)) 1 dims
      in
      let s = { data = Array.make (max size 1) (zero_of_ty a.aty); dims } in
      Hashtbl.replace fr.arr_store a.aid s;
      s

(* Column-major (Fortran) linear offset. Out-of-storage accesses can
   only happen when range checks were (incorrectly) removed; they are a
   memory fault, not a trap. *)
and offset_of _fr (a : arr) (s : storage) (vals : int list) : int =
  let rec go dims vals mult acc =
    match (dims, vals) with
    | [], [] -> acc
    | (lo, hi) :: dims, v :: vals -> go dims vals (mult * max 0 (hi - lo + 1)) (acc + ((v - lo) * mult))
    | _ -> raise (Runtime_error ("rank mismatch accessing " ^ a.aname))
  in
  let off = go s.dims vals 1 0 in
  if off < 0 || off >= Array.length s.data then
    raise (Runtime_error (Printf.sprintf "memory fault on %s (offset %d)" a.aname off))
  else off

let trap_message (m : check_meta) =
  Fmt.str "range check failed: %s dimension %d (%s bound): %a" m.src_array m.src_dim
    (match m.kind with Lower -> "lower" | Upper -> "upper")
    Check.pp m.chk

(* Evaluate a canonical check: sum the linear terms and compare. *)
let perform_check st fr (m : check_meta) =
  st.counters.checks <- st.counters.checks + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel < 0 then raise Out_of_fuel;
  let atoms = fr.func.Ir.Func.atoms in
  let sum =
    List.fold_left
      (fun acc (a, coeff) ->
        let v =
          match Ir.Atoms.payload_exn atoms (Atom.key a) with
          | Ir.Atoms.Avar v -> to_int fr.scalars.(v.vid)
          | Ir.Atoms.Aopaque e -> to_int (eval st fr e)
          | Ir.Atoms.Asynth name ->
              raise
                (Runtime_error ("synthetic atom " ^ name ^ " in an executed check"))
        in
        acc + (coeff * v))
      0
      (Nascent_checks.Linexpr.terms (Check.lhs m.chk))
  in
  if sum > Check.constant m.chk then raise (Trap (trap_message m))

let rec exec_call st (callee : Ir.Func.t) (args : (Value.t, storage) Either.t list) =
  let nvids = callee.Ir.Func.next_vid in
  let scalars = Array.make (max nvids 1) (VInt 0) in
  (* Locals default to the zero of their type. *)
  List.iter (fun (v : var) -> scalars.(v.vid) <- zero_of_ty v.vty) callee.Ir.Func.vars;
  let fr = { func = callee; scalars; arr_store = Hashtbl.create 8 } in
  List.iter2
    (fun (p : param) arg ->
      match (p, arg) with
      | Pscalar v, Either.Left value ->
          (* Integer parameter receiving an integer value, or real
             receiving real/int (promoted). *)
          fr.scalars.(v.vid) <-
            (match (v.vty, value) with
            | Real, VInt n -> VReal (float_of_int n)
            | _ -> value)
      | Parr a, Either.Right storage ->
          (* By reference: share the payload; the callee addresses it
             through its own declared dims, evaluated on first touch
             (after entry-block bound temps are assigned). *)
          Hashtbl.replace fr.arr_store a.aid { data = storage.data; dims = [] }
      | _ -> raise (Runtime_error ("argument kind mismatch calling " ^ callee.Ir.Func.fname)))
    callee.Ir.Func.params args;
  exec_blocks st fr

and exec_blocks st fr =
  let rec run_block bid =
    let b = Ir.Func.block fr.func bid in
    List.iter (exec_instr st fr) b.instrs;
    charge st 1;
    match b.term with
    | Goto l -> run_block l
    | Branch (c, t, f) -> if to_bool (eval st fr c) then run_block t else run_block f
    | Ret -> ()
  in
  run_block fr.func.Ir.Func.entry

and exec_instr st fr (i : instr) =
  match i with
  | Assign (v, e) ->
      let value = eval st fr e in
      charge st 1;
      fr.scalars.(v.vid) <-
        (match (v.vty, value) with Real, VInt n -> VReal (float_of_int n) | _ -> value)
  | Store (a, idxs, e) ->
      let vals = List.map (fun i -> to_int (eval st fr i)) idxs in
      let value = eval st fr e in
      charge st 1;
      let s = storage_of () fr a in
      s.data.(offset_of fr a s vals) <-
        (match (a.aty, value) with Real, VInt n -> VReal (float_of_int n) | _ -> value)
  | Check m -> perform_check st fr m
  | Cond_check (g, m) ->
      st.counters.cond_guards <- st.counters.cond_guards + 1;
      if to_bool (eval st fr g) then perform_check st fr m
  | Trap msg -> raise (Trap ("compile-time range violation: " ^ msg))
  | Call (name, args) ->
      let callee =
        match Ir.Program.find st.prog name with
        | Some f -> f
        | None -> raise (Runtime_error ("call to unknown subroutine " ^ name))
      in
      charge st 1;
      let args =
        List.map
          (fun arg ->
            match arg with
            | Aexpr e -> Either.Left (eval st fr e)
            | Aarr a -> Either.Right (storage_of () fr a))
          args
      in
      exec_call st callee args
  | Print e ->
      let v = eval st fr e in
      charge st 1;
      st.printed <- v :: st.printed


let default_fuel = 200_000_000

let run ?(fuel = default_fuel) (prog : Ir.Program.t) : outcome =
  let st =
    {
      prog;
      counters = { instrs = 0; checks = 0; cond_guards = 0 };
      printed = [];
      fuel;
    }
  in
  let main = Ir.Program.main_func prog in
  let finish trap error fuel_exhausted =
    {
      printed = List.rev st.printed;
      trap;
      error;
      instrs = st.counters.instrs;
      checks = st.counters.checks;
      cond_guards = st.counters.cond_guards;
      fuel_exhausted;
    }
  in
  match exec_call st main [] with
  | () -> finish None None false
  | exception Trap msg -> finish (Some msg) None false
  | exception Runtime_error msg -> finish None (Some msg) false
  | exception Out_of_fuel -> finish None None true

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf "@[<v>instrs=%d checks=%d cond-guards=%d%a%a%a@,printed: %a@]" o.instrs
    o.checks o.cond_guards
    (fun ppf -> function None -> () | Some t -> Fmt.pf ppf "@,TRAP: %s" t)
    o.trap
    (fun ppf -> function None -> () | Some e -> Fmt.pf ppf "@,ERROR: %s" e)
    o.error
    (fun ppf b -> if b then Fmt.pf ppf "@,(fuel exhausted)")
    o.fuel_exhausted
    Fmt.(list ~sep:comma Value.pp)
    o.printed

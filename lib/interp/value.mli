(** Runtime values of the instrumented interpreter. *)

type t = VInt of int | VReal of float | VBool of bool

val pp : t Fmt.t
val equal : t -> t -> bool
val zero_of_ty : Nascent_ir.Types.ty -> t

val to_int : t -> int
(** @raise Invalid_argument on non-integers. *)

val to_bool : t -> bool
(** @raise Invalid_argument on non-booleans. *)

(* Runtime values of the instrumented interpreter. *)

type t = VInt of int | VReal of float | VBool of bool

let pp ppf = function
  | VInt n -> Fmt.int ppf n
  | VReal f -> Fmt.pf ppf "%.6g" f
  | VBool b -> Fmt.bool ppf b

let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VReal x, VReal y -> Float.equal x y
  | VBool x, VBool y -> x = y
  | _ -> false

let zero_of_ty : Nascent_ir.Types.ty -> t = function
  | Nascent_ir.Types.Int -> VInt 0
  | Nascent_ir.Types.Real -> VReal 0.0
  | Nascent_ir.Types.Bool -> VBool false

let to_int = function
  | VInt n -> n
  | VReal _ | VBool _ -> invalid_arg "Value.to_int"

let to_bool = function
  | VBool b -> b
  | VInt _ | VReal _ -> invalid_arg "Value.to_bool"

(* vortex (Mendez suite): 2-D point-vortex dynamics.

   Character (scaled from the paper's 710-line original): dense pair
   loops over vortex arrays with heavily *repeated* subscripts per
   iteration (x(i), y(i) read several times), so plain redundancy
   elimination (NI) already removes most checks; every subscript is
   linear in a loop index, so LLS hoists essentially everything. *)

let name = "vortex"
let suite = "Mendez"

let description =
  "2-D point-vortex interaction: O(n^2) pair loops, repeated subscripts, \
   all-linear indexing"

let source =
  {|
program vortex
  integer nv, nsteps, i, t
  real x(1:40), y(1:40), g(1:40), u(1:40), v(1:40)
  real xm(1:40), ym(1:40)
  real diag(1:4)
  real dt, cx, cy
  real chk(1:1)

  nv = 40
  nsteps = 3
  dt = 0.01

  ! initialize vortex positions along two offset rings
  do i = 1, nv
    x(i) = 0.1 * i
    y(i) = 0.05 * (nv - i)
    g(i) = 1.0 + 0.01 * i
    u(i) = 0.0
    v(i) = 0.0
  enddo

  ! second-order (midpoint) time stepping
  do t = 1, nsteps
    call induce(x, y, g, u, v, nv)
    call midpoint(x, y, xm, ym, u, v, nv, dt)
    call induce(xm, ym, g, u, v, nv)
    call advance(x, y, u, v, nv, dt)
    call remesh(x, y, nv)
  enddo

  call diagnose(x, y, g, u, v, nv, diag)

  ! checksum: positions plus the diagnostics
  chk(1) = 0.0
  do i = 1, nv
    chk(1) = chk(1) + x(i) + y(i)
  enddo
  chk(1) = chk(1) + diag(1) + diag(2) + diag(3) + diag(4)
  print chk(1)
end

! half-step predictor positions
subroutine midpoint(x, y, xm, ym, u, v, nv, dt)
  integer nv, i
  real x(1:nv), y(1:nv), xm(1:nv), ym(1:nv)
  real u(1:nv), v(1:nv)
  real dt

  do i = 1, nv
    xm(i) = x(i) + 0.5 * dt * u(i)
    ym(i) = y(i) + 0.5 * dt * v(i)
  enddo
end

! keep vortices inside the computational box by reflecting excursions
subroutine remesh(x, y, nv)
  integer nv, i
  real x(1:nv), y(1:nv)
  real lim

  lim = 8.0
  do i = 1, nv
    if x(i) > lim then
      x(i) = lim - (x(i) - lim) * 0.5
    endif
    if x(i) < -lim then
      x(i) = -lim - (x(i) + lim) * 0.5
    endif
    if y(i) > lim then
      y(i) = lim - (y(i) - lim) * 0.5
    endif
    if y(i) < -lim then
      y(i) = -lim - (y(i) + lim) * 0.5
    endif
  enddo
end

! flow diagnostics: circulation, linear impulse, kinetic proxy
subroutine diagnose(x, y, g, u, v, nv, diag)
  integer nv, i
  real x(1:nv), y(1:nv), g(1:nv), u(1:nv), v(1:nv)
  real diag(1:4)

  diag(1) = 0.0
  diag(2) = 0.0
  diag(3) = 0.0
  diag(4) = 0.0
  do i = 1, nv
    diag(1) = diag(1) + g(i)
    diag(2) = diag(2) + g(i) * x(i)
    diag(3) = diag(3) + g(i) * y(i)
    diag(4) = diag(4) + u(i) * u(i) + v(i) * v(i)
  enddo
end

subroutine induce(x, y, g, u, v, nv)
  integer nv, i, j
  real x(1:nv), y(1:nv), g(1:nv), u(1:nv), v(1:nv)
  real dx, dy, r2, fac

  do i = 1, nv
    u(i) = 0.0
    v(i) = 0.0
  enddo

  ! softened interaction: the self term has dx = dy = 0 and
  ! contributes nothing, so no self-exclusion branch is needed
  do i = 1, nv
    do j = 1, nv
      dx = x(i) - x(j)
      dy = y(i) - y(j)
      r2 = dx * dx + dy * dy + 0.01
      fac = g(j) / r2
      u(i) = u(i) - fac * dy
      v(i) = v(i) + fac * dx
    enddo
  enddo
end

subroutine advance(x, y, u, v, nv, dt)
  integer nv, i
  real x(1:nv), y(1:nv), u(1:nv), v(1:nv)
  real dt

  do i = 1, nv
    x(i) = x(i) + dt * u(i)
    y(i) = y(i) + dt * v(i)
  enddo
end
|}

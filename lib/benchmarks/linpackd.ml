(* linpackd (Riceps suite): LU factorization and solve.

   Character: the classic dgefa/dgesl pair on a dense matrix —
   column-sliced daxpy inner loops (all linear), a pivot-search loop
   with an out-parameter array (MiniF scalars pass by value), and
   triangular back-substitution. Modest subscript reuse puts NI around
   the paper's 66%; LLS hoists nearly everything (99.7%). *)

let name = "linpackd"
let suite = "Riceps"

let description =
  "LU factorization/solve: daxpy column kernels, pivot search, triangular \
   back-substitution"

let source =
  {|
program linpackd
  integer n, i, j
  real a(1:20, 1:20), b(1:20), xsol(1:20)
  real asave(1:20, 1:20), bsave(1:20), rwork(1:20)
  real nrm(1:2)
  integer ipvt(1:20)
  real resid
  real chk(1:1)

  n = 20

  ! diagonally dominant test matrix
  do j = 1, n
    do i = 1, n
      if i = j then
        a(i, j) = 10.0 + 0.1 * i
      else
        a(i, j) = 1.0 / (i + j)
      endif
    enddo
    b(j) = 1.0 + 0.01 * j
  enddo

  ! keep the original matrix and right-hand side for the residual
  do j = 1, n
    do i = 1, n
      asave(i, j) = a(i, j)
    enddo
    bsave(j) = b(j)
  enddo

  call dgefa(a, ipvt, n)
  call dgesl(a, b, ipvt, n)

  do i = 1, n
    xsol(i) = b(i)
  enddo

  ! residual r = b0 - A0 x and its norms (the linpack quality metric)
  call dmxpy(asave, xsol, rwork, n)
  do i = 1, n
    rwork(i) = bsave(i) - rwork(i)
  enddo
  call norms(rwork, xsol, n, nrm)

  resid = 0.0
  do i = 1, n
    resid = resid + xsol(i)
  enddo
  chk(1) = resid + nrm(1) + nrm(2)
  print chk(1)
end

! y = A x (column-sweep matrix-vector product)
subroutine dmxpy(a, x, y, n)
  integer n, i, j
  real a(1:n, 1:n), x(1:n), y(1:n)

  do i = 1, n
    y(i) = 0.0
  enddo
  do j = 1, n
    do i = 1, n
      y(i) = y(i) + a(i, j) * x(j)
    enddo
  enddo
end

! one-norm of the residual and infinity-norm of the solution
subroutine norms(r, x, n, nrm)
  integer n, i
  real r(1:n), x(1:n)
  real nrm(1:2)

  nrm(1) = 0.0
  nrm(2) = 0.0
  do i = 1, n
    nrm(1) = nrm(1) + abs(r(i))
    if abs(x(i)) > nrm(2) then
      nrm(2) = abs(x(i))
    endif
  enddo
end

! LU factorization with partial pivoting
subroutine dgefa(a, ipvt, n)
  integer n, i, j, k, l
  real a(1:n, 1:n), t
  integer ipvt(1:n)
  real lmax(1:1)
  integer lidx(1:1)

  do k = 1, n - 1
    ! pivot search in column k (idamax)
    call idamax(a, k, n, lidx, lmax)
    l = lidx(1)
    ipvt(k) = l
    if l /= k then
      t = a(l, k)
      a(l, k) = a(k, k)
      a(k, k) = t
    endif
    ! scale the column
    t = -1.0 / a(k, k)
    do i = k + 1, n
      a(i, k) = a(i, k) * t
    enddo
    ! rank-1 update of the trailing submatrix (daxpy per column)
    do j = k + 1, n
      t = a(l, j)
      if l /= k then
        a(l, j) = a(k, j)
        a(k, j) = t
      endif
      do i = k + 1, n
        a(i, j) = a(i, j) + t * a(i, k)
      enddo
    enddo
  enddo
  ipvt(n) = n
end

! index of the largest magnitude element of column k, rows k..n
subroutine idamax(a, k, n, lidx, lmax)
  integer k, n, i
  real a(1:n, 1:n)
  integer lidx(1:1)
  real lmax(1:1)

  lidx(1) = k
  lmax(1) = abs(a(k, k))
  do i = k + 1, n
    if abs(a(i, k)) > lmax(1) then
      lmax(1) = abs(a(i, k))
      lidx(1) = i
    endif
  enddo
end

! forward elimination and back substitution using the stored factors
subroutine dgesl(a, b, ipvt, n)
  integer n, i, k, l
  real a(1:n, 1:n), b(1:n), t
  integer ipvt(1:n)

  ! forward: apply the multipliers in pivot order
  do k = 1, n - 1
    l = ipvt(k)
    t = b(l)
    if l /= k then
      b(l) = b(k)
      b(k) = t
    endif
    do i = k + 1, n
      b(i) = b(i) + t * a(i, k)
    enddo
  enddo

  ! back substitution
  do k = n, 1, -1
    b(k) = b(k) / a(k, k)
    t = -b(k)
    do i = 1, k - 1
      b(i) = b(i) + t * a(i, k)
    enddo
  enddo
end
|}

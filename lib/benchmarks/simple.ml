(* simple (Riceps suite): 2-D Lagrangian hydrodynamics.

   Character: the paper's highest NI percentage (92%) — hydro update
   statements re-read the same cell values many times per iteration, so
   nearly every check is a straight-line repeat; all indexing is the
   loop indices plus/minus one, so LLS reaches 99.97%. *)

let name = "simple"
let suite = "Riceps"

let description =
  "2-D Lagrangian hydrodynamics: pressure/velocity/energy sweeps with very \
   heavy per-statement subscript reuse"

let source =
  {|
program simple
  integer m, ncycle, i, j, t
  real r(1:18, 1:18), z(1:18, 1:18)
  real u(1:18, 1:18), w(1:18, 1:18)
  real p(1:18, 1:18), e(1:18, 1:18)
  real dt, q
  real chk(1:1)

  m = 18
  ncycle = 2
  dt = 0.002

  do j = 1, m
    do i = 1, m
      r(i, j) = 1.0 + 0.01 * i
      z(i, j) = 1.0 + 0.01 * j
      u(i, j) = 0.0
      w(i, j) = 0.0
      p(i, j) = 2.0 + 0.001 * (i + j)
      e(i, j) = 1.0
    enddo
  enddo

  do t = 1, ncycle
    call hydro(r, z, u, w, p, m, dt)
    call energy(p, e, u, w, m, dt)
    call conduct(e, m, dt)
    call edges(u, w, m)
  enddo

  q = 0.0
  do j = 1, m
    do i = 1, m
      q = q + e(i, j) + 0.001 * (u(i, j) + w(i, j))
    enddo
  enddo
  chk(1) = q
  print chk(1)
end

! momentum and position update; each statement re-reads its cell and
! the same neighbours several times
subroutine hydro(r, z, u, w, p, m, dt)
  integer m, i, j
  real r(1:m, 1:m), z(1:m, 1:m)
  real u(1:m, 1:m), w(1:m, 1:m), p(1:m, 1:m)
  real dt, gradx, grady

  do j = 2, m - 1
    do i = 2, m - 1
      gradx = p(i + 1, j) - p(i - 1, j) + 0.5 * (p(i + 1, j) + p(i - 1, j)) * 0.01
      grady = p(i, j + 1) - p(i, j - 1) + 0.5 * (p(i, j + 1) + p(i, j - 1)) * 0.01
      u(i, j) = u(i, j) - dt * gradx * u(i, j) * 0.1 - dt * gradx
      w(i, j) = w(i, j) - dt * grady * w(i, j) * 0.1 - dt * grady
      r(i, j) = r(i, j) + dt * u(i, j) + dt * dt * u(i, j) * 0.5
      z(i, j) = z(i, j) + dt * w(i, j) + dt * dt * w(i, j) * 0.5
    enddo
  enddo
end

! explicit heat conduction sweep on the internal energy
subroutine conduct(e, m, dt)
  integer m, i, j
  real e(1:m, 1:m)
  real dt, kappa, lap

  kappa = 0.02
  do j = 2, m - 1
    do i = 2, m - 1
      lap = e(i - 1, j) + e(i + 1, j) + e(i, j - 1) + e(i, j + 1) - 4.0 * e(i, j)
      e(i, j) = e(i, j) + dt * kappa * lap
    enddo
  enddo
end

! free-slip velocity boundary copy on the four edges
subroutine edges(u, w, m)
  integer m, i, j
  real u(1:m, 1:m), w(1:m, 1:m)

  do i = 1, m
    u(i, 1) = u(i, 2)
    u(i, m) = u(i, m - 1)
    w(i, 1) = 0.0
    w(i, m) = 0.0
  enddo
  do j = 1, m
    u(1, j) = 0.0
    u(m, j) = 0.0
    w(1, j) = w(2, j)
    w(m, j) = w(m - 1, j)
  enddo
end

! internal energy update with artificial viscosity
subroutine energy(p, e, u, w, m, dt)
  integer m, i, j
  real p(1:m, 1:m), e(1:m, 1:m)
  real u(1:m, 1:m), w(1:m, 1:m)
  real dt, div, visc

  do j = 2, m - 1
    do i = 2, m - 1
      div = u(i + 1, j) - u(i - 1, j) + w(i, j + 1) - w(i, j - 1)
      if div < 0.0 then
        visc = 0.1 * div * div
      else
        visc = 0.0
      endif
      e(i, j) = e(i, j) - dt * (p(i, j) + visc) * div - dt * e(i, j) * 0.001
      p(i, j) = 0.4 * e(i, j) * (1.0 + 0.01 * e(i, j))
    enddo
  enddo
end
|}

(* The 10-program benchmark suite mirroring the paper's Table 1
   selection (Perfect, Riceps and Mendez codes), recreated in MiniF
   with each program's documented loop/array character. *)

type benchmark = {
  name : string;
  bsuite : string; (* Perfect / Riceps / Mendez *)
  description : string;
  source : string;
}

let all : benchmark list =
  [
    { name = Vortex.name; bsuite = Vortex.suite; description = Vortex.description; source = Vortex.source };
    { name = Arc2d.name; bsuite = Arc2d.suite; description = Arc2d.description; source = Arc2d.source };
    { name = Bdna.name; bsuite = Bdna.suite; description = Bdna.description; source = Bdna.source };
    { name = Dyfesm.name; bsuite = Dyfesm.suite; description = Dyfesm.description; source = Dyfesm.source };
    { name = Mdg.name; bsuite = Mdg.suite; description = Mdg.description; source = Mdg.source };
    { name = Qcd.name; bsuite = Qcd.suite; description = Qcd.description; source = Qcd.source };
    { name = Spec77.name; bsuite = Spec77.suite; description = Spec77.description; source = Spec77.source };
    { name = Trfd.name; bsuite = Trfd.suite; description = Trfd.description; source = Trfd.source };
    { name = Linpackd.name; bsuite = Linpackd.suite; description = Linpackd.description; source = Linpackd.source };
    { name = Simple.name; bsuite = Simple.suite; description = Simple.description; source = Simple.source };
  ]

let find name = List.find_opt (fun b -> b.name = name) all

(* Source line count (nonblank), Table 1's "lines" column. *)
let line_count b =
  String.split_on_char '\n' b.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

(* dyfesm (Perfect suite): finite-element structural dynamics.

   Character: the paper's PRE standout — NI eliminates only ~70% while
   SE/LNI gain ~7 more points. We reproduce the cause: element loops
   whose accesses are *partially redundant* (performed on one branch of
   a material-model diamond and again after the join), which
   availability alone cannot remove but edge placement can. Indirect
   connectivity accesses (gathered via an element-node map) are opaque
   to canonicalization and survive every scheme in small numbers. *)

let name = "dyfesm"
let suite = "Perfect"

let description =
  "finite elements: branchy element loops with partially redundant accesses \
   (PRE gains), indirect connectivity (opaque residue)"

let source =
  {|
program dyfesm
  integer ne, nn, nsteps, e, i, t
  real disp(1:60), veloc(1:60), force(1:60), stiff(1:50)
  real mass(1:60), ework(1:1)
  integer conn(1:50)
  real dt, fsum
  real chk(1:1)

  ne = 50
  nn = 60
  nsteps = 3
  dt = 0.01

  ! mesh setup: element e connects node conn(e) = e + (wiggle)
  do e = 1, ne
    conn(e) = e + mod(e, 3)
    stiff(e) = 1.0 + 0.01 * e
  enddo
  do i = 1, nn
    disp(i) = 0.001 * i
    veloc(i) = 0.0
    force(i) = 0.0
  enddo

  call lumpmass(mass, stiff, ne, nn)

  do t = 1, nsteps
    call zero(force, nn)
    call elemforce(disp, force, stiff, conn, ne, nn)
    call applymass(force, mass, nn)
    call stepnodes(disp, veloc, force, nn, dt)
    call senergy(disp, stiff, ne, nn, ework)
  enddo

  fsum = 0.0
  do i = 1, nn
    fsum = fsum + disp(i)
  enddo
  chk(1) = fsum
  print chk(1)
end

subroutine zero(force, nn)
  integer nn, i
  real force(1:nn)
  do i = 1, nn
    force(i) = 0.0
  enddo
end

! element force assembly: a material-model diamond makes the trailing
! accumulation *partially redundant* with the branch bodies
subroutine elemforce(disp, force, stiff, conn, ne, nn)
  integer ne, nn, e
  real disp(1:nn), force(1:nn), stiff(1:ne)
  integer conn(1:ne)
  real strain, fmag

  do e = 1, ne - 1
    if mod(e, 2) = 0 then
      ! the tension model reads the displacements and touches
      ! force(e) here ...
      strain = disp(e + 1) - disp(e)
      fmag = stiff(e) * strain
      force(e) = force(e) + fmag
    else
      ! ... the compression model touches neither
      fmag = 0.01 * stiff(e)
    endif
    ! ... and the join touches them again: redundant only on the
    ! tension path (SE/LNI insert on the compression edge)
    force(e) = force(e) - 0.5 * fmag
    force(e + 1) = force(e + 1) + 0.5 * fmag
    disp(e) = disp(e) * 0.999
  enddo

  ! indirect gather through the connectivity map: subscripts are
  ! loads, opaque to canonical range expressions
  do e = 1, ne
    force(conn(e)) = force(conn(e)) + 0.01 * stiff(e)
  enddo
end

! lumped nodal masses from element stiffnesses
subroutine lumpmass(mass, stiff, ne, nn)
  integer ne, nn, e, i
  real mass(1:nn), stiff(1:ne)

  do i = 1, nn
    mass(i) = 1.0
  enddo
  do e = 1, ne - 1
    mass(e) = mass(e) + 0.5 * stiff(e)
    mass(e + 1) = mass(e + 1) + 0.5 * stiff(e)
  enddo
end

! divide forces by the lumped masses (explicit dynamics)
subroutine applymass(force, mass, nn)
  integer nn, i
  real force(1:nn), mass(1:nn)

  do i = 1, nn
    force(i) = force(i) / mass(i)
  enddo
end

! strain energy over the elements
subroutine senergy(disp, stiff, ne, nn, ework)
  integer ne, nn, e
  real disp(1:nn), stiff(1:ne)
  real ework(1:1)
  real s

  ework(1) = 0.0
  do e = 1, ne - 1
    s = disp(e + 1) - disp(e)
    ework(1) = ework(1) + 0.5 * stiff(e) * s * s
  enddo
end

subroutine stepnodes(disp, veloc, force, nn, dt)
  integer nn, i
  real disp(1:nn), veloc(1:nn), force(1:nn)
  real dt
  do i = 1, nn
    veloc(i) = veloc(i) + dt * force(i)
    disp(i) = disp(i) + dt * veloc(i)
  enddo
end
|}

(* trfd (Perfect suite): two-electron integral transformation kernel.

   Character: triangular loop nests over packed pair indices with
   *few repeated subscripts* — the paper's lowest NI percentage (61%).
   Row offsets accumulate across the outer loop (a polynomial
   recurrence, not hoistable past it), while inner subscripts are
   base + q (linear): LLS hoists them to the inner preheader. Subscript
   temps assigned inside the inner loop from invariant operands
   (iaq = base + 2) are invisible to PRX hoisting but resolve to
   invariant induction expressions — the paper's "LI optimization of
   trfd, where about 20% more checks were eliminated due to induction
   variable analysis". *)

let name = "trfd"
let suite = "Perfect"

let description =
  "integral transformation: triangular nests, packed-offset accumulators, \
   invariant subscript temps (the INX-LI case)"

let source =
  {|
program trfd
  integer nbf, npair, p, q, i, t, nsteps
  real x(1:136), y(1:136), v(1:16)
  real acc
  real chk(1:1)

  nbf = 16
  npair = (nbf * (nbf + 1)) / 2
  nsteps = 2

  do i = 1, npair
    x(i) = 0.01 * i
    y(i) = 0.0
  enddo
  do i = 1, nbf
    v(i) = 1.0 / (1.0 + i)
  enddo

  do t = 1, nsteps
    call transf(x, y, v, nbf)
    call transf2(y, x, v, nbf)
    call accum(x, y, npair)
    call symm(y, nbf)
  enddo

  acc = 0.0
  do i = 1, npair
    acc = acc + y(i)
  enddo
  chk(1) = acc
  print chk(1)
end

! half-transformation over the packed triangle:
!   ioff accumulates the row offset (polynomial in the outer index),
!   inner subscripts ioff + q are linear in q,
!   iaq is an invariant-valued temp assigned inside the inner loop
subroutine transf(x, y, v, nbf)
  integer nbf, p, q, ioff, iaq
  real x(1:(nbf * (nbf + 1)) / 2), y(1:(nbf * (nbf + 1)) / 2), v(1:nbf)
  real t1, t2

  ioff = 0
  do p = 1, nbf
    do q = 1, p
      t1 = x(ioff + q) * v(q)
      t1 = t1 + x(ioff + q) * x(ioff + q) * 0.01
      iaq = ioff + 1
      t2 = x(iaq) * 0.5 + x(iaq) * x(iaq) * 0.05
      y(ioff + q) = y(ioff + q) + t1 + t2 * v(p) + v(q) * 0.001
    enddo
    ioff = ioff + p
  enddo
end

! second half-transformation: same triangular walk, swapped operands
subroutine transf2(src, dst, v, nbf)
  integer nbf, p, q, ioff
  real src(1:(nbf * (nbf + 1)) / 2), dst(1:(nbf * (nbf + 1)) / 2), v(1:nbf)

  ioff = 0
  do p = 1, nbf
    do q = 1, p
      dst(ioff + q) = dst(ioff + q) + 0.1 * src(ioff + q) * v(p)
    enddo
    ioff = ioff + p
  enddo
end

! diagonal symmetrization of the packed triangle
subroutine symm(y, nbf)
  integer nbf, p, ioff, idiag
  real y(1:(nbf * (nbf + 1)) / 2)

  ioff = 0
  do p = 1, nbf
    idiag = ioff + p
    y(idiag) = y(idiag) * 0.5 + 0.25 * (y(idiag) + y(ioff + 1))
    ioff = ioff + p
  enddo
end

! pairwise accumulation over distinct packed entries (little reuse)
subroutine accum(x, y, npair)
  integer npair, i, half
  real x(1:npair), y(1:npair)

  half = npair / 2
  do i = 1, half
    y(i) = y(i) + 0.2 * x(npair - i + 1)
    y(npair - i + 1) = y(npair - i + 1) + 0.1 * x(i)
  enddo
end
|}

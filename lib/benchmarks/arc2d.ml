(* arc2d (Perfect suite): implicit finite-difference fluid solver.

   Character: 2-D stencil sweeps over multi-component grids. Subscripts
   are the loop indices plus/minus small constants — all linear, so the
   preheader schemes eliminate nearly everything; the five-point
   stencil re-reads neighbours, feeding plain redundancy elimination. *)

let name = "arc2d"
let suite = "Perfect"

let description =
  "implicit 2-D finite-difference solver: multi-component stencil sweeps, \
   boundary loops, all-linear indexing"

let source =
  {|
program arc2d
  integer m, nc, nsweeps, i, j, k, t
  real q(0:21, 0:21, 1:3), rhs(0:21, 0:21, 1:3), work(0:21, 0:21)
  real dtime, rel
  real chk(1:1)

  m = 20
  nc = 3
  nsweeps = 2
  dtime = 0.05
  rel = 0.9

  ! initial condition: smooth hump per component
  do k = 1, nc
    do j = 0, m + 1
      do i = 0, m + 1
        q(i, j, k) = 1.0 + 0.001 * (i * j + k)
        rhs(i, j, k) = 0.0
      enddo
    enddo
  enddo

  do t = 1, nsweeps
    call fluxes(q, rhs, m, nc)
    call resid(q, rhs, work, m, nc)
    call smooth(q, rhs, m, nc, dtime, rel)
    call filter4(q, work, m, nc)
    call bc(q, m, nc)
  enddo

  chk(1) = 0.0
  do k = 1, nc
    do j = 1, m
      do i = 1, m
        chk(1) = chk(1) + q(i, j, k)
      enddo
    enddo
  enddo
  print chk(1)
end

! five-point stencil residual, one component at a time
subroutine resid(q, rhs, work, m, nc)
  integer m, nc, i, j, k
  real q(0:m + 1, 0:m + 1, 1:nc), rhs(0:m + 1, 0:m + 1, 1:nc)
  real work(0:m + 1, 0:m + 1)

  do k = 1, nc
    do j = 1, m
      do i = 1, m
        work(i, j) = q(i - 1, j, k) + q(i + 1, j, k) + q(i, j - 1, k) + q(i, j + 1, k) - 4.0 * q(i, j, k)
      enddo
    enddo
    do j = 1, m
      do i = 1, m
        rhs(i, j, k) = work(i, j) + 0.25 * (work(i, j) * work(i, j)) * 0.001
      enddo
    enddo
  enddo
end

! pointwise implicit smoothing update
subroutine smooth(q, rhs, m, nc, dtime, rel)
  integer m, nc, i, j, k
  real q(0:m + 1, 0:m + 1, 1:nc), rhs(0:m + 1, 0:m + 1, 1:nc)
  real dtime, rel

  do k = 1, nc
    do j = 1, m
      do i = 1, m
        q(i, j, k) = q(i, j, k) + rel * dtime * rhs(i, j, k)
      enddo
    enddo
  enddo
end

! directional flux differences seeding the right-hand side
subroutine fluxes(q, rhs, m, nc)
  integer m, nc, i, j, k
  real q(0:m + 1, 0:m + 1, 1:nc), rhs(0:m + 1, 0:m + 1, 1:nc)
  real fx, fy

  do k = 1, nc
    ! x-direction pass
    do j = 1, m
      do i = 1, m
        fx = 0.5 * (q(i + 1, j, k) - q(i - 1, j, k))
        rhs(i, j, k) = fx * (1.0 + 0.01 * q(i, j, k))
      enddo
    enddo
    ! y-direction pass accumulates
    do j = 1, m
      do i = 1, m
        fy = 0.5 * (q(i, j + 1, k) - q(i, j - 1, k))
        rhs(i, j, k) = rhs(i, j, k) + fy * (1.0 - 0.01 * q(i, j, k))
      enddo
    enddo
  enddo
end

! fourth-difference artificial dissipation (classic arc2d ingredient)
subroutine filter4(q, work, m, nc)
  integer m, nc, i, j, k
  real q(0:m + 1, 0:m + 1, 1:nc), work(0:m + 1, 0:m + 1)
  real eps

  eps = 0.003
  do k = 1, nc
    do j = 1, m
      do i = 2, m - 1
        work(i, j) = q(i - 2 + 1, j, k) - 2.0 * q(i, j, k) + q(i + 1, j, k)
      enddo
    enddo
    do j = 1, m
      do i = 2, m - 1
        q(i, j, k) = q(i, j, k) - eps * work(i, j)
      enddo
    enddo
  enddo
end

! reflective boundary conditions on the four edges
subroutine bc(q, m, nc)
  integer m, nc, i, j, k
  real q(0:m + 1, 0:m + 1, 1:nc)

  do k = 1, nc
    do i = 1, m
      q(i, 0, k) = q(i, 1, k)
      q(i, m + 1, k) = q(i, m, k)
    enddo
    do j = 0, m + 1
      q(0, j, k) = q(1, j, k)
      q(m + 1, j, k) = q(m, j, k)
    enddo
  enddo
end
|}

(* spec77 (Perfect suite): spectral atmospheric model kernel.

   Character: triangular spectral-coefficient loops, and — the paper's
   check-strengthening standout — *descending offset sequences* like
   w(k) followed by w(k-1): after canonicalization the later lower
   bound check is strictly stronger, so plain availability misses it
   while CS performs the stronger check early (spec77 gains ~3 points
   from CS and ~6 from SE in Table 2). *)

let name = "spec77"
let suite = "Perfect"

let description =
  "spectral model: triangular coefficient loops, descending offset access \
   sequences (CS gains), recurrence sweeps"

let source =
  {|
program spec77
  integer mm, i, m, k, t, nsteps
  real coef(1:210), work(1:210), grid(1:40)
  real rowsum(1:20)
  real sum
  real chk(1:1)

  mm = 20
  nsteps = 2

  ! triangular spectral coefficient array, packed rows
  do i = 1, (mm * (mm + 1)) / 2
    coef(i) = 0.001 * i
    work(i) = 0.0
  enddo
  do i = 1, 2 * mm
    grid(i) = 0.01 * i
  enddo

  do t = 1, nsteps
    call legendre(coef, work, mm)
    call recurdown(work, mm)
    call diffuse(work, mm)
    call togrid(work, grid, mm)
    call spectra(work, rowsum, mm)
  enddo

  sum = 0.0
  do i = 1, (mm * (mm + 1)) / 2
    sum = sum + work(i)
  enddo
  chk(1) = sum
  print chk(1)
end

! triangular transform: row m holds mm - m + 1 entries
subroutine legendre(coef, work, mm)
  integer mm, m, n2, base, idx
  real coef(1:(mm * (mm + 1)) / 2), work(1:(mm * (mm + 1)) / 2)

  do m = 1, mm
    base = ((m - 1) * (2 * mm - m + 2)) / 2
    do n2 = 1, mm - m + 1
      idx = base + n2
      work(idx) = coef(idx) * 0.5 + coef(base + 1) * 0.25
      work(idx) = work(idx) + coef(idx) * coef(idx) * 0.125
      work(idx) = work(idx) * (1.0 + 0.001 * coef(idx))
    enddo
  enddo
end

! downward recurrence: w(k) read, then w(k-1) read and written — the
! canonical lower-bound check of w(k-1) is stronger than w(k)'s and
! appears *after* it: made redundant only by strengthening
subroutine recurdown(work, mm)
  integer mm, k, len
  real work(1:(mm * (mm + 1)) / 2)
  real a

  len = (mm * (mm + 1)) / 2
  do k = len, 2, -1
    a = work(k)
    work(k - 1) = work(k - 1) + 0.3 * a
  enddo
end

! spectral hyper-diffusion: damp each coefficient by its row index
subroutine diffuse(work, mm)
  integer mm, m, n2, base
  real work(1:(mm * (mm + 1)) / 2)
  real nu

  nu = 0.0001
  do m = 1, mm
    base = ((m - 1) * (2 * mm - m + 2)) / 2
    do n2 = 1, mm - m + 1
      work(base + n2) = work(base + n2) * (1.0 - nu * m * m)
    enddo
  enddo
end

! per-row energy spectra of the triangular coefficient array
subroutine spectra(work, rowsum, mm)
  integer mm, m, n2, base
  real work(1:(mm * (mm + 1)) / 2)
  real rowsum(1:mm)

  do m = 1, mm
    rowsum(m) = 0.0
    base = ((m - 1) * (2 * mm - m + 2)) / 2
    do n2 = 1, mm - m + 1
      rowsum(m) = rowsum(m) + work(base + n2) * work(base + n2)
    enddo
  enddo
end

! synthesis to grid points with wavenumber pairs
subroutine togrid(work, grid, mm)
  integer mm, m, g
  real work(1:(mm * (mm + 1)) / 2), grid(1:2 * mm)

  do g = 1, 2 * mm
    grid(g) = 0.0
  enddo
  ! complex-packed wavenumber pairs: grid(2m-1) holds the real part and
  ! grid(2m) the imaginary part — the strided subscripts 2m and 2m-1
  ! are the paper's Figure 1 implication pattern
  do m = 1, mm
    grid(2 * m) = grid(2 * m) * 0.999
    grid(2 * m - 1) = grid(2 * m - 1) * 0.999 + grid(2 * m) * 0.001
  enddo
  do m = 1, mm
    do g = 1, 2 * mm
      if g > m then
        grid(g) = grid(g) + work(m) * 0.01
      else
        grid(g) = grid(g) - work(m) * 0.01
      endif
      grid(g) = grid(g) * 0.9999 + work(m) * 0.0001
      grid(g) = grid(g) + 0.00001 * work(m) * grid(g)
    enddo
  enddo
end
|}

(* mdg (Perfect suite): molecular dynamics of water molecules.

   Character: double pair loops over molecule sites (three sites per
   molecule: oxygen plus two hydrogens), moderate subscript reuse
   (NI around 80%), fully linear indexing so the preheader schemes take
   nearly everything; a predictor/corrector sweep adds straight-line
   array traffic. *)

let name = "mdg"
let suite = "Perfect"

let description =
  "water molecular dynamics: site pair loops (3 sites/molecule), \
   predictor-corrector sweeps, linear indexing"

let source =
  {|
program mdg
  integer nm, ns, nsteps, i, t
  real sx(1:54), sy(1:54)
  real fsx(1:54), fsy(1:54)
  real vx(1:54), vy(1:54)
  real dt
  real chk(1:1)

  nm = 18
  ns = nm * 3
  nsteps = 2
  dt = 0.001

  do i = 1, ns
    sx(i) = 0.7 * i
    sy(i) = 0.2 * i + 0.01 * mod(i, 5)
    vx(i) = 0.0
    vy(i) = 0.0
  enddo

  do t = 1, nsteps
    call predict(sx, sy, vx, vy, ns, dt)
    call interf(sx, sy, fsx, fsy, ns)
    call intraf(sx, sy, fsx, fsy, ns)
    call correct(vx, vy, fsx, fsy, ns, dt)
  enddo

  chk(1) = 0.0
  do i = 1, ns
    chk(1) = chk(1) + sx(i) * 0.001 + vy(i)
  enddo
  print chk(1)
end

subroutine predict(sx, sy, vx, vy, ns, dt)
  integer ns, i
  real sx(1:ns), sy(1:ns), vx(1:ns), vy(1:ns)
  real dt
  do i = 1, ns
    sx(i) = sx(i) + dt * vx(i)
    sy(i) = sy(i) + dt * vy(i)
  enddo
end

! intermolecular site-site forces: O-O, O-H, H-H handled in one pair
! sweep with per-site weights
subroutine interf(sx, sy, fsx, fsy, ns)
  integer ns, i, j
  real sx(1:ns), sy(1:ns), fsx(1:ns), fsy(1:ns)
  real dx, dy, r2, s, wi

  do i = 1, ns
    fsx(i) = 0.0
    fsy(i) = 0.0
  enddo

  do i = 1, ns
    if mod(i, 3) = 1 then
      wi = 1.0
    else
      wi = 0.4
    endif
    do j = i + 1, ns
      dx = sx(i) - sx(j)
      dy = sy(i) - sy(j)
      r2 = dx * dx + dy * dy + 0.05
      s = wi / r2
      fsx(i) = fsx(i) + s * dx
      fsy(i) = fsy(i) + s * dy
      fsx(j) = fsx(j) - s * dx
      fsy(j) = fsy(j) - s * dy
    enddo
  enddo
end

! intramolecular O-H spring forces within each 3-site molecule
subroutine intraf(sx, sy, fsx, fsy, ns)
  integer ns, i
  real sx(1:ns), sy(1:ns), fsx(1:ns), fsy(1:ns)
  real dx1, dy1, dx2, dy2, kb

  kb = 2.0
  do i = 1, ns - 2, 3
    ! oxygen at i, hydrogens at i+1 and i+2
    dx1 = sx(i + 1) - sx(i)
    dy1 = sy(i + 1) - sy(i)
    dx2 = sx(i + 2) - sx(i)
    dy2 = sy(i + 2) - sy(i)
    fsx(i) = fsx(i) + kb * (dx1 + dx2)
    fsy(i) = fsy(i) + kb * (dy1 + dy2)
    fsx(i + 1) = fsx(i + 1) - kb * dx1
    fsy(i + 1) = fsy(i + 1) - kb * dy1
    fsx(i + 2) = fsx(i + 2) - kb * dx2
    fsy(i + 2) = fsy(i + 2) - kb * dy2
  enddo
end

subroutine correct(vx, vy, fsx, fsy, ns, dt)
  integer ns, i
  real vx(1:ns), vy(1:ns), fsx(1:ns), fsy(1:ns)
  real dt
  do i = 1, ns
    vx(i) = vx(i) + dt * fsx(i)
    vy(i) = vy(i) + dt * fsy(i)
  enddo
end
|}

(* bdna (Perfect suite): molecular dynamics of a DNA-like chain.

   Character: pair-distance loops with *conditional* force accumulation
   under a cutoff test — checks inside the `if` are not anticipatable
   at the loop body start, so even LLS leaves a small residue (the
   paper reports 98.4%, not ~100%). A while-loop equilibration driver
   defeats safe-earliest hoisting. Repeated subscripts keep NI around
   90%. *)

let name = "bdna"
let suite = "Perfect"

let description =
  "chain molecular dynamics: cutoff-conditional accesses (LLS residue), \
   while-loop driver, heavy subscript reuse"

let source =
  {|
program bdna
  integer na, i, steps, maxsteps
  real px(1:48), py(1:48), pz(1:48)
  real fx(1:48), fy(1:48), fz(1:48)
  real vx(1:48), vy(1:48), vz(1:48)
  real dt, cutoff2, energy
  real echk(1:1)

  na = 48
  dt = 0.002
  cutoff2 = 30.0
  maxsteps = 3

  ! helix-ish initial coordinates
  do i = 1, na
    px(i) = 0.5 * i
    py(i) = 0.3 * (na - i)
    pz(i) = 0.1 * i
    vx(i) = 0.0
    vy(i) = 0.0
    vz(i) = 0.0
  enddo

  ! equilibrate until the step budget runs out (while-loop driver)
  steps = 0
  while steps < maxsteps do
    call forces(px, py, pz, fx, fy, fz, na, cutoff2)
    call bend(px, py, pz, fx, fy, fz, na)
    call integrate(px, py, pz, vx, vy, vz, fx, fy, fz, na, dt)
    call thermostat(vx, vy, vz, na)
    steps = steps + 1
  endwhile

  call energy_of(px, py, pz, vx, vy, vz, na, echk)
  energy = echk(1)
  print energy
end

! three-body bending forces along the chain (i-1, i, i+1 triples)
subroutine bend(px, py, pz, fx, fy, fz, na)
  integer na, i
  real px(1:na), py(1:na), pz(1:na)
  real fx(1:na), fy(1:na), fz(1:na)
  real bx, by, bz, kb

  kb = 0.05
  do i = 2, na - 1
    bx = px(i - 1) - 2.0 * px(i) + px(i + 1)
    by = py(i - 1) - 2.0 * py(i) + py(i + 1)
    bz = pz(i - 1) - 2.0 * pz(i) + pz(i + 1)
    fx(i) = fx(i) + kb * bx
    fy(i) = fy(i) + kb * by
    fz(i) = fz(i) + kb * bz
    fx(i - 1) = fx(i - 1) - 0.5 * kb * bx
    fx(i + 1) = fx(i + 1) - 0.5 * kb * bx
  enddo
end

! crude velocity rescaling toward a target kinetic energy
subroutine thermostat(vx, vy, vz, na)
  integer na, i
  real vx(1:na), vy(1:na), vz(1:na)
  real ke, scale

  ke = 0.0
  do i = 1, na
    ke = ke + vx(i) * vx(i) + vy(i) * vy(i) + vz(i) * vz(i)
  enddo
  if ke > 10.0 then
    scale = 0.95
  else
    scale = 1.0
  endif
  do i = 1, na
    vx(i) = vx(i) * scale
    vy(i) = vy(i) * scale
    vz(i) = vz(i) * scale
  enddo
end

! pairwise forces with a cutoff: the accumulation accesses are inside
! the cutoff conditional
subroutine forces(px, py, pz, fx, fy, fz, na, cutoff2)
  integer na, i, j
  real px(1:na), py(1:na), pz(1:na)
  real fx(1:na), fy(1:na), fz(1:na)
  integer ncontact(1:na)
  real cutoff2, dx, dy, dz, r2, s

  do i = 1, na
    fx(i) = 0.0
    fy(i) = 0.0
    fz(i) = 0.0
    ncontact(i) = 0
  enddo

  ! softened pair force, computed for every pair; the close-contact
  ! bookkeeping stays under the cutoff conditional, so its checks are
  ! not anticipatable at the body start and survive even LLS (the
  ! paper's bdna residue)
  do i = 1, na
    do j = 1, na
      dx = px(i) - px(j)
      dy = py(i) - py(j)
      dz = pz(i) - pz(j)
      r2 = dx * dx + dy * dy + dz * dz
      if r2 < cutoff2 then
        s = 1.0 / (r2 + 0.1)
        ncontact(i) = ncontact(i) + 1
      else
        s = 0.0
      endif
      fx(i) = fx(i) + s * dx
      fy(i) = fy(i) + s * dy
      fz(i) = fz(i) + s * dz
    enddo
  enddo

  ! bonded neighbours along the chain
  do i = 2, na
    dx = px(i) - px(i - 1)
    dy = py(i) - py(i - 1)
    dz = pz(i) - pz(i - 1)
    fx(i) = fx(i) - 0.5 * dx
    fy(i) = fy(i) - 0.5 * dy
    fz(i) = fz(i) - 0.5 * dz
    fx(i - 1) = fx(i - 1) + 0.5 * dx
    fy(i - 1) = fy(i - 1) + 0.5 * dy
    fz(i - 1) = fz(i - 1) + 0.5 * dz
  enddo
end

subroutine integrate(px, py, pz, vx, vy, vz, fx, fy, fz, na, dt)
  integer na, i
  real px(1:na), py(1:na), pz(1:na)
  real vx(1:na), vy(1:na), vz(1:na)
  real fx(1:na), fy(1:na), fz(1:na)
  real dt

  do i = 1, na
    vx(i) = vx(i) + dt * fx(i)
    vy(i) = vy(i) + dt * fy(i)
    vz(i) = vz(i) + dt * fz(i)
    px(i) = px(i) + dt * vx(i)
    py(i) = py(i) + dt * vy(i)
    pz(i) = pz(i) + dt * vz(i)
  enddo
end

subroutine energy_of(px, py, pz, vx, vy, vz, na, echk)
  integer na, i
  real px(1:na), py(1:na), pz(1:na)
  real vx(1:na), vy(1:na), vz(1:na)
  real echk(1:1)

  echk(1) = 0.0
  do i = 1, na
    echk(1) = echk(1) + vx(i) * vx(i) + vy(i) * vy(i) + vz(i) * vz(i)
    echk(1) = echk(1) + 0.001 * (px(i) + py(i) + pz(i))
  enddo
end
|}

(* qcd (Perfect suite): lattice gauge theory kernel.

   Character: sweeps over a periodic lattice where the neighbour of
   site i is mod(i, n) + 1 — a *non-linear* subscript that
   canonicalization can only treat as an opaque term, so those checks
   resist every placement scheme: qcd has the lowest LLS percentage in
   the paper's Table 2 (97.0%). Plaquette-style reuse keeps NI near
   79%. *)

let name = "qcd"
let suite = "Perfect"

let description =
  "lattice gauge kernel: periodic mod-neighbour subscripts (opaque, \
   unhoistable), link/site sweeps"

let source =
  {|
program qcd
  integer nsite, nsweeps, i, t
  real link1(1:64), link2(1:64), site(1:64)
  real pmeas(1:1)
  real beta, action
  real chk(1:1)

  nsite = 64
  nsweeps = 3
  beta = 5.5

  do i = 1, nsite
    link1(i) = 1.0 + 0.001 * i
    link2(i) = 1.0 - 0.001 * i
    site(i) = 0.0
  enddo

  do t = 1, nsweeps
    call staple(link1, link2, site, nsite, beta)
    call update(link1, link2, site, nsite)
    call relax(site, nsite)
    call renorm(link1, link2, nsite)
  enddo

  call plaquette(link1, link2, nsite, pmeas)
  action = pmeas(1)
  do i = 1, nsite
    action = action + site(i)
  enddo
  chk(1) = action
  print chk(1)
end

! keep the link variables bounded (projection back to the group,
! crudely)
subroutine renorm(link1, link2, nsite)
  integer nsite, i
  real link1(1:nsite), link2(1:nsite)

  do i = 1, nsite
    if link1(i) > 2.0 then
      link1(i) = 2.0
    endif
    if link1(i) < -2.0 then
      link1(i) = -2.0
    endif
    if link2(i) > 2.0 then
      link2(i) = 2.0
    endif
    if link2(i) < -2.0 then
      link2(i) = -2.0
    endif
  enddo
end

! average plaquette observable, with the periodic mod neighbour
subroutine plaquette(link1, link2, nsite, pmeas)
  integer nsite, i
  real link1(1:nsite), link2(1:nsite)
  real pmeas(1:1)

  pmeas(1) = 0.0
  do i = 1, nsite
    pmeas(1) = pmeas(1) + link1(i) * link2(mod(i, nsite) + 1)
  enddo
  pmeas(1) = pmeas(1) / nsite
end

! plaquette staples: the periodic neighbour mod(i, nsite) + 1 is a
! non-linear subscript (opaque range expression)
subroutine staple(link1, link2, site, nsite, beta)
  integer nsite, i
  real link1(1:nsite), link2(1:nsite), site(1:nsite)
  real beta, s

  do i = 1, nsite
    s = link1(i) * link2(mod(i, nsite) + 1) + link2(i) * link1(mod(i, nsite) + 1)
    site(i) = beta * s - link1(i) * link2(i)
  enddo
end

! heatbath-ish link update, linear indexing with reuse
subroutine update(link1, link2, site, nsite)
  integer nsite, i
  real link1(1:nsite), link2(1:nsite), site(1:nsite)
  real d

  do i = 1, nsite
    d = 0.01 * site(i)
    link1(i) = link1(i) + d * link2(i)
    link2(i) = link2(i) - d * link1(i)
    site(i) = 0.9 * site(i) + 0.05 * (link1(i) + link2(i))
  enddo
end

! over-relaxation smoothing of the action density (linear indexing)
subroutine relax(site, nsite)
  integer nsite, i
  real site(1:nsite)

  do i = 2, nsite - 1
    site(i) = 0.5 * site(i) + 0.25 * (site(i - 1) + site(i + 1))
  enddo
end
|}

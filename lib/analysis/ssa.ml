(* SSA overlay.

   Rather than rewriting the IR into SSA form, this module computes the
   SSA name structure *about* the IR: definitions (entry values,
   assignments, phi nodes placed on dominance frontiers) and, per
   instruction site, the environment mapping each variable to its
   reaching definition. Induction variable analysis (paper section 2.3)
   and the INX check rewriting are the clients.

   Only reachable blocks are renamed; sites in unreachable blocks have
   no snapshot. *)

module Func = Nascent_ir.Func
module Vec = Nascent_support.Vec
open Nascent_ir.Types

type def_id = int

type def_desc =
  | Dentry of var (* the value on function entry (parameter or zero) *)
  | Dassign of { bid : int; idx : int; v : var; rhs : expr }
  | Dphi of { bid : int; v : var; mutable args : (int * def_id) list }
      (* args: (predecessor block, reaching def along that edge) *)

type t = {
  func : Func.t;
  defs : def_desc Vec.t;
  (* (bid, instr index) -> [vid -> def id] environment *before* the
     instruction executes (phis of the block already applied). *)
  snapshots : (int * int, int array) Hashtbl.t;
  (* phis placed at each block: (vid, def id) list *)
  phis_at : (int, (int * def_id) list) Hashtbl.t;
  (* [vid -> def id] at the end of each reachable block *)
  block_end_env : int array array;
  nvars : int;
}

let def t (d : def_id) = Vec.get t.defs d

let var_of_def t (d : def_id) =
  match def t d with Dentry v -> v | Dassign { v; _ } -> v | Dphi { v; _ } -> v

let def_block t (d : def_id) =
  match def t d with
  | Dentry _ -> None
  | Dassign { bid; _ } -> Some bid
  | Dphi { bid; _ } -> Some bid

let snapshot t ~bid ~idx = Hashtbl.find_opt t.snapshots (bid, idx)

let phis_at t bid = Option.value ~default:[] (Hashtbl.find_opt t.phis_at bid)

let phi_args t (d : def_id) =
  match def t d with Dphi { args; _ } -> args | _ -> []

(* --- construction ---------------------------------------------------- *)

let assigned_var (i : instr) : var option =
  match i with Assign (v, _) -> Some v | _ -> None

let compute (f : Func.t) : t =
  let nvars = f.Func.next_vid in
  let dom = Dominance.compute f in
  let df = Dominance.frontiers dom in
  let nblocks = Func.num_blocks f in
  let defs = Vec.create ~dummy:(Dentry { vname = "?"; vid = -1; vty = Int }) in
  (* 1. blocks assigning each var *)
  let assign_blocks = Array.make nvars [] in
  Func.iter_blocks
    (fun b ->
      if Dominance.reachable dom b.bid then
        List.iter
          (fun i ->
            match assigned_var i with
            | Some v -> assign_blocks.(v.vid) <- b.bid :: assign_blocks.(v.vid)
            | None -> ())
          b.instrs)
    f;
  (* 2. phi placement on iterated dominance frontiers *)
  let phis_at = Hashtbl.create 16 in
  let phi_ids = Hashtbl.create 16 in
  (* (bid, vid) -> def id *)
  let vars_arr = Array.make nvars None in
  List.iter (fun (v : var) -> vars_arr.(v.vid) <- Some v) f.Func.vars;
  List.iter
    (fun p ->
      match p with
      | Pscalar v -> vars_arr.(v.vid) <- Some v
      | Parr _ -> ())
    f.Func.params;
  for vid = 0 to nvars - 1 do
    match vars_arr.(vid) with
    | None -> ()
    | Some v ->
        let placed = Array.make nblocks false in
        let work = ref assign_blocks.(vid) in
        (* entry holds the initial definition, so it counts as a def site *)
        work := f.Func.entry :: !work;
        while !work <> [] do
          let b = List.hd !work in
          work := List.tl !work;
          List.iter
            (fun y ->
              if not placed.(y) then begin
                placed.(y) <- true;
                let did = Vec.push defs (Dphi { bid = y; v; args = [] }) in
                Hashtbl.replace phis_at y
                  ((vid, did) :: Option.value ~default:[] (Hashtbl.find_opt phis_at y));
                Hashtbl.replace phi_ids (y, vid) did;
                (* a phi is itself a definition *)
                work := y :: !work
              end)
            df.(b)
        done
  done;
  (* 3. renaming via dominator-tree walk *)
  let snapshots = Hashtbl.create 256 in
  let block_end_env = Array.make nblocks [||] in
  let cur = Array.make nvars (-1) in
  for vid = 0 to nvars - 1 do
    match vars_arr.(vid) with
    | Some v -> cur.(vid) <- Vec.push defs (Dentry v)
    | None -> ()
  done;
  let children = Dominance.children dom in
  let preds = Func.preds_array f in
  ignore preds;
  let rec walk bid (env : int array) =
    let env = Array.copy env in
    (* phis first *)
    List.iter (fun (vid, did) -> env.(vid) <- did) (phis_at_tbl bid);
    let b = Func.block f bid in
    List.iteri
      (fun idx i ->
        Hashtbl.replace snapshots (bid, idx) (Array.copy env);
        match i with
        | Assign (v, rhs) ->
            let did = Vec.push defs (Dassign { bid; idx; v; rhs }) in
            env.(v.vid) <- did
        | _ -> ())
      b.instrs;
    block_end_env.(bid) <- env;
    (* fill successor phi args *)
    List.iter
      (fun s ->
        List.iter
          (fun (vid, did) ->
            match Vec.get defs did with
            | Dphi p -> p.args <- (bid, env.(vid)) :: p.args
            | _ -> ())
          (phis_at_tbl s))
      (Func.succs f bid);
    List.iter (fun c -> if Dominance.reachable dom c then walk c env) children.(bid)
  and phis_at_tbl bid = Option.value ~default:[] (Hashtbl.find_opt phis_at bid) in
  if nblocks > 0 then walk f.Func.entry cur;
  { func = f; defs; snapshots; phis_at; block_end_env; nvars }

(** SSA overlay.

    Rather than rewriting the IR into SSA form, this module computes
    the SSA name structure {e about} the IR: definitions (entry values,
    assignments, phi nodes placed on dominance frontiers) and, per
    instruction site, the environment mapping each variable to its
    reaching definition. Induction variable analysis (paper section
    2.3) and the INX check rewriting are the clients.

    Only reachable blocks are renamed; sites in unreachable blocks have
    no snapshot. *)

open Nascent_ir.Types

type def_id = int

type def_desc =
  | Dentry of var  (** the value on function entry (parameter or zero) *)
  | Dassign of { bid : int; idx : int; v : var; rhs : expr }
  | Dphi of { bid : int; v : var; mutable args : (int * def_id) list }
      (** args: (predecessor block, reaching def along that edge) *)

type t

val compute : Nascent_ir.Func.t -> t

val def : t -> def_id -> def_desc
val var_of_def : t -> def_id -> var

val def_block : t -> def_id -> int option
(** The block holding the definition; [None] for entry values. *)

val snapshot : t -> bid:int -> idx:int -> int array option
(** The environment [vid -> def id] {e before} instruction [idx] of
    block [bid] executes (the block's phis already applied); [None] for
    unreachable sites. *)

val phis_at : t -> int -> (int * def_id) list
(** The phis placed at a block, as [(vid, def id)] pairs. *)

val phi_args : t -> def_id -> (int * def_id) list

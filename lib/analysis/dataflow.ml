(* Generic iterative bit-vector data-flow solver.

   Both check analyses are *must* problems (intersection confluence)
   whose per-block transfer is kill-then-gen, so the solver takes
   per-block GEN/KILL sets, a direction, and boundary values, and
   iterates to the maximal fixed point starting from the optimistic
   full set.

   Unreachable blocks keep the optimistic value; clients only consult
   reachable blocks. *)

module Bitset = Nascent_support.Bitset
module Guard = Nascent_support.Guard
module Func = Nascent_ir.Func

type direction = Forward | Backward

type block_transfer = { gen : Bitset.t; kill : Bitset.t }

type result = { in_ : Bitset.t array; out : Bitset.t array }

let apply_transfer tf ~input ~output =
  Bitset.assign ~into:output input;
  Bitset.diff_into ~into:output tf.kill;
  Bitset.union_into ~into:output tf.gen

(* [solve f ~universe ~direction ~boundary ~transfer] where
   [boundary] is the value at the entry (forward) or at every exit
   block (backward), and [transfer.(b)] the GEN/KILL of block [b]. *)
let solve (f : Func.t) ~universe ~direction ~(boundary : Bitset.t)
    ~(transfer : block_transfer array) : result =
  let n = Func.num_blocks f in
  let mk_full () = Array.init n (fun _ -> Bitset.full universe) in
  let in_ = mk_full () and out = mk_full () in
  let preds = Func.preds_array f in
  (* Backward boundary: a block in a no-exit region (an SCC with no
     path to any successor-less block — an infinite loop built directly
     in the IR) has no terminating path, so the maximal fixed point
     would keep the optimistic full set there and anticipatability
     would claim checks that no execution realizes. Such blocks are
     boundary blocks too: no path to an exit means nothing is
     anticipated along one. *)
  let reaches_exit =
    match direction with
    | Forward -> [||]
    | Backward ->
        let r = Array.make n false in
        let rec mark b =
          if not r.(b) then begin
            r.(b) <- true;
            List.iter mark preds.(b)
          end
        in
        Func.iter_blocks
          (fun b ->
            let bid = b.Nascent_ir.Types.bid in
            if Func.succs f bid = [] then mark bid)
          f;
        r
  in
  let rpo = Func.rpo f in
  let order = match direction with Forward -> rpo | Backward -> List.rev rpo in
  let entry = f.Func.entry in
  let tmp = Bitset.create universe in
  (* Convergence bound: a must-problem over an n-block CFG strictly
     shrinks some set on every productive sweep, so 8n + 64 sweeps is
     far past any real fixpoint — hitting it means the transfer
     functions are non-monotone (corrupted IR or a solver bug). The
     explicit bound makes the solver total even with no ambient watchdog
     installed; the per-sweep [Guard.tick_ambient] additionally charges
     any enclosing pass or pool-task fuel budget. *)
  let max_sweeps = (8 * n) + 64 in
  let sweeps = ref 0 in
  let changed = ref true in
  while !changed do
    Guard.tick_ambient ();
    incr sweeps;
    if !sweeps > max_sweeps then
      raise
        (Guard.Fuel_exhausted
           (Printf.sprintf "dataflow solve in %s: no fixpoint after %d sweeps"
              f.Func.fname max_sweeps));
    changed := false;
    List.iter
      (fun b ->
        (* confluence *)
        let conf_sources =
          match direction with Forward -> preds.(b) | Backward -> Func.succs f b
        in
        let conf_target = match direction with Forward -> in_.(b) | Backward -> out.(b) in
        let is_boundary =
          match direction with
          | Forward -> b = entry
          | Backward ->
              (* exit blocks, plus blocks that cannot reach one *)
              conf_sources = [] || not reaches_exit.(b)
        in
        if is_boundary then Bitset.assign ~into:conf_target boundary
        else begin
          Bitset.fill tmp;
          List.iter
            (fun s ->
              let sv = match direction with Forward -> out.(s) | Backward -> in_.(s) in
              Bitset.inter_into ~into:tmp sv)
            conf_sources;
          Bitset.assign ~into:conf_target tmp
        end;
        (* transfer *)
        let input, output =
          match direction with Forward -> (in_.(b), out.(b)) | Backward -> (out.(b), in_.(b))
        in
        Bitset.assign ~into:tmp output;
        apply_transfer transfer.(b) ~input ~output;
        if not (Bitset.equal tmp output) then changed := true)
      order
  done;
  { in_; out }

(** Natural loops.

    Finds back edges (edges whose target dominates their source),
    builds the natural loop of each header, and pairs the result with
    the lowering-time loop metadata (do/while structure, index
    variables, bounds) — what the preheader insertion schemes consume.

    {!compute} reports loops innermost-first: the order in which the
    paper hoists checks "to the outermost loop possible" (section
    3.3). *)

type loop = {
  header : int;
  blocks : int list;  (** includes the header *)
  block_set : bool array;  (** indexed by block id *)
  meta : Nascent_ir.Types.loop_meta option;
      (** lowering metadata, when this is a source-level loop *)
  defined_vids : (int, unit) Hashtbl.t;
      (** scalars assigned anywhere inside the loop *)
  has_store : bool;  (** any store or call (which may store) inside *)
  depth : int;  (** nesting depth, outermost = 1 *)
}

val compute : Nascent_ir.Func.t -> loop list
(** All natural loops, innermost-first. *)

val in_loop : loop -> int -> bool
val defines : loop -> int -> bool

val innermost_containing : loop list -> int -> loop option
(** The innermost loop (from an innermost-first list) containing the
    block. *)

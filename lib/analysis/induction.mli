(** SSA-based induction variable analysis (paper section 2.3, after
    Gerlek/Stoltz/Wolfe).

    Every natural loop has a {e basic loop variable} h taking values
    0, 1, 2, ... per iteration. {!classify} grades a definition against
    its loop; {!form_of_var} resolves the value of a variable at a
    program site into the canonical {e induction expression}

    {v sum of coeff * h_L (one per enclosing loop L)
   + sum of stable leaf definitions + constant v}

    validated against the site's SSA environment: every leaf is a
    definition whose variable still holds that value at the site, so
    the form can be evaluated there. This is exactly what the INX check
    rewriting needs. *)

open Nascent_ir.Types

type iv_class =
  | Inv  (** value does not change across iterations *)
  | Linear of { step : int; init : Ssa.def_id }
      (** value = init + step * h, constant integer step *)
  | Polynomial
      (** a recurrence whose increment is itself linear (Figure 2's
          [k*(k+1)/2] shape) *)
  | Unknown

type leaf =
  | Ldef of Ssa.def_id  (** a stable definition, read via its variable *)
  | Lbasic of int  (** the basic variable of the loop with this header *)

type linear_form = { leaves : (leaf * int) list; const : int }

val const_form : int -> linear_form
val basic_form : ?coeff:int -> int -> linear_form
val add_forms : linear_form -> linear_form -> linear_form
val scale_form : int -> linear_form -> linear_form

val is_identity_leaf : Ssa.def_id -> linear_form -> bool
(** Is the form just the definition itself (no rewriting gained)? *)

val mentions_basic : linear_form -> bool

val classify : Ssa.t -> Loops.loop -> Ssa.def_id -> iv_class
(** Classification of a definition relative to one loop (the paper's
    Figure 2 table). *)

val form_of_var :
  Ssa.t -> Loops.loop list -> site_env:int array -> var -> linear_form option
(** The induction form of variable [v]'s value at a site; [loops] are
    the loops enclosing the site, innermost first. [None] when the
    value cannot be expressed over stable leaves and basic variables. *)

val trip_count_expr : do_info -> expr
(** The trip count of a counted loop as a foldable expression:
    [max(0, (hi - lo + step) / step)] for positive step. *)

(* SSA-based induction variable analysis (paper section 2.3, after
   Gerlek/Stoltz/Wolfe).

   Every natural loop has a *basic loop variable* h taking values
   0, 1, 2, ... per iteration. A definition inside the loop is
   classified against h:

   - [Inv]        — the value does not change across iterations;
   - [Linear]     — value = init + step * h, constant integer step;
   - [Polynomial] — a recurrence whose increment is itself linear
                    (Figure 2's  k*(k+1)/2  shape);
   - [Unknown]    — anything else.

   [linear_form] additionally resolves a definition (or a whole
   expression at a site) into the canonical *induction expression*
     sum of coeff * h_L (one per enclosing loop L)
     + sum of leaf definitions + constant
   validated against a site environment, which is exactly what the INX
   check-rewriting needs: each leaf is a definition whose variable still
   holds that definition's value at the site, so the form can be
   evaluated there. Basic variables of *all* enclosing loops may
   appear, so a variable linear in an outer loop resolves identically
   at every nesting depth. *)

module Func = Nascent_ir.Func
open Nascent_ir.Types

type iv_class =
  | Inv
  | Linear of { step : int; init : Ssa.def_id }
  | Polynomial
  | Unknown

(* A symbolic term of an induction expression: either a stable SSA
   definition or the basic variable of an enclosing loop (identified by
   its header block). *)
type leaf = Ldef of Ssa.def_id | Lbasic of int

(* Induction expression: Σ coeff_i * leaf_i + const. *)
type linear_form = { leaves : (leaf * int) list; const : int }

let const_form k = { leaves = []; const = k }

let basic_form ?(coeff = 1) header = { leaves = [ (Lbasic header, coeff) ]; const = 0 }

let add_forms a b =
  let leaves =
    List.fold_left
      (fun acc (d, c) ->
        let c0 = Option.value ~default:0 (List.assoc_opt d acc) in
        let acc = List.remove_assoc d acc in
        if c0 + c = 0 then acc else (d, c0 + c) :: acc)
      a.leaves b.leaves
  in
  { leaves; const = a.const + b.const }

let scale_form k f =
  if k = 0 then const_form 0
  else { leaves = List.map (fun (d, c) -> (d, k * c)) f.leaves; const = k * f.const }

let is_identity_leaf d f = f.const = 0 && f.leaves = [ (Ldef d, 1) ]

let mentions_basic f =
  List.exists (fun (l, _) -> match l with Lbasic _ -> true | Ldef _ -> false) f.leaves

type ctx = {
  ssa : Ssa.t;
  (* the loops enclosing the site, innermost first *)
  loops : Loops.loop list;
  (* the environment the result must be valid in: vid -> reaching def *)
  site_env : int array;
}

(* Does this phi sit at the header of one of the enclosing loops, with
   exactly one initial (out-of-loop) and one update (in-loop)
   argument? Returns the loop too. *)
let header_phi ctx (d : Ssa.def_id) : (Loops.loop * Ssa.def_id * Ssa.def_id) option =
  match Ssa.def ctx.ssa d with
  | Ssa.Dphi { bid; args; _ } -> (
      match List.find_opt (fun (l : Loops.loop) -> l.Loops.header = bid) ctx.loops with
      | None -> None
      | Some loop -> (
          let inits, updates =
            List.partition (fun (pred, _) -> not (Loops.in_loop loop pred)) args
          in
          match (inits, updates) with
          | [ (_, init) ], [ (_, update) ] -> Some (loop, init, update)
          | _ -> None))
  | _ -> None

(* --- step resolution: value(d) = a * phi + c, integer a and c --------
   [loop] is the loop whose recurrence is being resolved. *)

let rec step_form ctx ~loop ~phi ~fuel (d : Ssa.def_id) : (int * int) option =
  if fuel = 0 then None
  else if d = phi then Some (1, 0)
  else
    match Ssa.def ctx.ssa d with
    | Ssa.Dassign { bid; idx; rhs; _ } when Loops.in_loop loop bid -> (
        match Ssa.snapshot ctx.ssa ~bid ~idx with
        | None -> None
        | Some env -> step_expr ctx ~loop ~phi ~fuel:(fuel - 1) ~env rhs)
    | _ ->
        (* out-of-loop values must be compile-time constants for the
           step to be a constant *)
        Option.map (fun k -> (0, k)) (const_of ctx ~fuel:(fuel - 1) d)

and step_expr ctx ~loop ~phi ~fuel ~env (e : expr) : (int * int) option =
  match e with
  | Cint k -> Some (0, k)
  | Evar v when v.vty = Int && env.(v.vid) >= 0 ->
      step_form ctx ~loop ~phi ~fuel env.(v.vid)
  | Eun (Neg, a) ->
      Option.map (fun (x, y) -> (-x, -y)) (step_expr ctx ~loop ~phi ~fuel ~env a)
  | Ebin (Add, a, b) -> (
      match
        (step_expr ctx ~loop ~phi ~fuel ~env a, step_expr ctx ~loop ~phi ~fuel ~env b)
      with
      | Some (xa, ya), Some (xb, yb) -> Some (xa + xb, ya + yb)
      | _ -> None)
  | Ebin (Sub, a, b) -> (
      match
        (step_expr ctx ~loop ~phi ~fuel ~env a, step_expr ctx ~loop ~phi ~fuel ~env b)
      with
      | Some (xa, ya), Some (xb, yb) -> Some (xa - xb, ya - yb)
      | _ -> None)
  | Ebin (Mul, a, b) -> (
      match
        (step_expr ctx ~loop ~phi ~fuel ~env a, step_expr ctx ~loop ~phi ~fuel ~env b)
      with
      | Some (0, ka), Some (xb, yb) -> Some (ka * xb, ka * yb)
      | Some (xa, ya), Some (0, kb) -> Some (xa * kb, ya * kb)
      | _ -> None)
  | _ -> None

(* compile-time constant value of a definition, if any *)
and const_of ctx ~fuel (d : Ssa.def_id) : int option =
  if fuel = 0 then None
  else
    match Ssa.def ctx.ssa d with
    | Ssa.Dassign { bid; idx; rhs; _ } -> (
        match Ssa.snapshot ctx.ssa ~bid ~idx with
        | None -> None
        | Some env -> const_expr ctx ~fuel:(fuel - 1) ~env rhs)
    | _ -> None

and const_expr ctx ~fuel ~env (e : expr) : int option =
  match e with
  | Cint k -> Some k
  | Evar v when v.vty = Int && env.(v.vid) >= 0 -> const_of ctx ~fuel env.(v.vid)
  | Eun (Neg, a) -> Option.map (fun k -> -k) (const_expr ctx ~fuel ~env a)
  | Ebin (Add, a, b) -> combine ctx ~fuel ~env ( + ) a b
  | Ebin (Sub, a, b) -> combine ctx ~fuel ~env ( - ) a b
  | Ebin (Mul, a, b) -> combine ctx ~fuel ~env ( * ) a b
  | _ -> None

and combine ctx ~fuel ~env op a b =
  match (const_expr ctx ~fuel ~env a, const_expr ctx ~fuel ~env b) with
  | Some x, Some y -> Some (op x y)
  | _ -> None

(* --- classification -------------------------------------------------- *)

let default_fuel = 24

let classify (ssa : Ssa.t) (loop : Loops.loop) (d : Ssa.def_id) : iv_class =
  let ctx = { ssa; loops = [ loop ]; site_env = [||] } in
  match Ssa.def_block ssa d with
  | Some bid when Loops.in_loop loop bid -> (
      match header_phi ctx d with
      | Some (loop, init, update) -> (
          match step_form ctx ~loop ~phi:d ~fuel:default_fuel update with
          | Some (1, c) -> Linear { step = c; init }
          | Some _ -> Unknown
          | None -> (
              (* is the increment linear in some other IV of the loop?
                 then the recurrence is polynomial (Figure 2's k). *)
              match Ssa.def ssa update with
              | Ssa.Dassign { bid = ub; idx; rhs; _ } when Loops.in_loop loop ub -> (
                  match Ssa.snapshot ssa ~bid:ub ~idx with
                  | None -> Unknown
                  | Some env ->
                      let self_coeff_linear_rest =
                        (* rhs = 1*self + (something linear in another
                           header phi)? conservative structural test:
                           rhs mentions d and some other linear phi *)
                        let rec mentions_def e =
                          match e with
                          | Evar v when v.vty = Int && env.(v.vid) >= 0 ->
                              [ env.(v.vid) ]
                          | Eun (_, a) -> mentions_def a
                          | Ebin (_, a, b) -> mentions_def a @ mentions_def b
                          | _ -> []
                        in
                        let used = mentions_def rhs in
                        List.mem d used
                        && List.exists
                             (fun u ->
                               u <> d
                               &&
                               match header_phi ctx u with
                               | Some (l', _, upd) -> (
                                   match
                                     step_form ctx ~loop:l' ~phi:u ~fuel:default_fuel upd
                                   with
                                   | Some (1, _) -> true
                                   | _ -> false)
                               | None -> false)
                             used
                      in
                      if self_coeff_linear_rest then Polynomial else Unknown)
              | _ -> Unknown))
      | None -> Unknown)
  | Some _ -> Unknown (* in-loop assignment: classified via linear_form *)
  | None -> Inv

(* --- linear forms for the INX rewriting ------------------------------ *)

(* Resolve definition [d] into [Σ coeff*h_L + leaves + const], valid at
   a site whose environment is [site_env]: every leaf definition must be
   the reaching definition of its variable at that site, so reading the
   variable there yields the leaf's value. *)
let rec linear_form ctx ~fuel (d : Ssa.def_id) : linear_form option =
  if fuel = 0 then None
  else
    let leaf_valid () =
      let v = Ssa.var_of_def ctx.ssa d in
      v.vid < Array.length ctx.site_env && ctx.site_env.(v.vid) = d
    in
    let leaf () =
      if leaf_valid () then Some { leaves = [ (Ldef d, 1) ]; const = 0 } else None
    in
    match header_phi ctx d with
    | Some (loop, init, update) -> (
        match step_form ctx ~loop ~phi:d ~fuel update with
        | Some (1, step) -> (
            (* value = init + step * h_loop; the init must not itself
               depend on this loop's basic variable *)
            match linear_form ctx ~fuel:(fuel - 1) init with
            | Some fi
              when not
                     (List.mem_assoc (Lbasic loop.Loops.header) fi.leaves) ->
                Some (add_forms fi (basic_form ~coeff:step loop.Loops.header))
            | _ -> leaf ())
        | _ -> leaf ())
    | None -> (
        (* Prefer expanding assignments (that is where the induction
           information lives: k = n + 1 resolves to an n-based form);
           fall back to a validated leaf. *)
        let expanded =
          match Ssa.def ctx.ssa d with
          | Ssa.Dassign { bid; idx; rhs; _ } -> (
              match Ssa.snapshot ctx.ssa ~bid ~idx with
              | None -> None
              | Some env -> linear_expr ctx ~fuel:(fuel - 1) ~env rhs)
          | _ -> None
        in
        match expanded with Some f -> Some f | None -> leaf ())

(* Linear form of an expression under environment [env] (the site where
   the expression occurs), recursing through definitions. *)
and linear_expr ctx ~fuel ~env (e : expr) : linear_form option =
  if fuel = 0 then None
  else
    match e with
    | Cint k -> Some (const_form k)
    | Evar v when v.vty = Int && v.vid < Array.length env && env.(v.vid) >= 0 ->
        linear_form ctx ~fuel:(fuel - 1) env.(v.vid)
    | Eun (Neg, a) -> Option.map (scale_form (-1)) (linear_expr ctx ~fuel ~env a)
    | Ebin (Add, a, b) -> (
        match (linear_expr ctx ~fuel ~env a, linear_expr ctx ~fuel ~env b) with
        | Some fa, Some fb -> Some (add_forms fa fb)
        | _ -> None)
    | Ebin (Sub, a, b) -> (
        match (linear_expr ctx ~fuel ~env a, linear_expr ctx ~fuel ~env b) with
        | Some fa, Some fb -> Some (add_forms fa (scale_form (-1) fb))
        | _ -> None)
    | Ebin (Mul, a, b) -> (
        match (linear_expr ctx ~fuel ~env a, linear_expr ctx ~fuel ~env b) with
        | Some { leaves = []; const = k }, Some f | Some f, Some { leaves = []; const = k }
          ->
            Some (scale_form k f)
        | _ -> None)
    | _ -> None

(* Public entry: the induction form of the value of variable [v] at the
   site with environment [site_env]; [loops] are the loops enclosing
   the site, innermost first. *)
let form_of_var (ssa : Ssa.t) (loops : Loops.loop list) ~(site_env : int array)
    (v : var) : linear_form option =
  if v.vty <> Int || v.vid >= Array.length site_env || site_env.(v.vid) < 0 then None
  else
    let ctx = { ssa; loops; site_env } in
    linear_form ctx ~fuel:default_fuel site_env.(v.vid)

(* The trip count of a do loop as an expression, when derivable:
   max(0, (hi - lo + step) / step) for positive step. Used by tests and
   by the LLS substitution on basic variables. *)
let trip_count_expr (d : do_info) : expr =
  let s = d.d_step in
  let span = if s > 0 then Ebin (Sub, d.d_hi, d.d_lo) else Ebin (Sub, d.d_lo, d.d_hi) in
  let per = abs s in
  let raw =
    if per = 1 then Ebin (Add, span, Cint 1)
    else Ebin (Add, Ebin (Div, span, Cint per), Cint 1)
  in
  Nascent_ir.Expr.fold (Ebin (Max, Cint 0, raw))

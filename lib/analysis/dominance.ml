(* Dominator computation (Cooper–Harvey–Kennedy "engineered" iterative
   algorithm) plus dominance frontiers and dominator-tree children.

   Operates on reachable blocks only; unreachable blocks report no
   dominator and dominate nothing. *)

module Func = Nascent_ir.Func

type t = {
  func : Func.t;
  idom : int array; (* immediate dominator; entry maps to itself; -1 unreachable *)
  rpo_index : int array; (* position in reverse postorder; -1 unreachable *)
  rpo : int list;
}

let compute (f : Func.t) : t =
  let n = Func.num_blocks f in
  let rpo = Func.rpo f in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let preds = Func.preds_array f in
  let idom = Array.make n (-1) in
  let entry = f.Func.entry in
  idom.(entry) <- entry;
  let intersect a b =
    (* Walk up the (partially built) dominator tree: the common
       ancestor with respect to RPO order. *)
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          let processed =
            List.filter (fun p -> idom.(p) <> -1 && rpo_index.(p) <> -1) preds.(b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { func = f; idom; rpo_index; rpo }

let idom t b = if t.idom.(b) = -1 then None else Some t.idom.(b)

let reachable t b = t.rpo_index.(b) <> -1

(* Does [a] dominate [b]? (Reflexive.) *)
let dominates t a b =
  if not (reachable t b) then false
  else begin
    let x = ref b in
    let result = ref false in
    let continue = ref true in
    while !continue do
      if !x = a then begin
        result := true;
        continue := false
      end
      else if !x = t.func.Func.entry then continue := false
      else x := t.idom.(!x)
    done;
    !result
  end

(* Dominator-tree children, for tree walks (SSA renaming). *)
let children t : int list array =
  let n = Array.length t.idom in
  let kids = Array.make n [] in
  for b = 0 to n - 1 do
    if t.idom.(b) <> -1 && b <> t.func.Func.entry then
      kids.(t.idom.(b)) <- b :: kids.(t.idom.(b))
  done;
  Array.map List.rev kids

(* Dominance frontiers (Cytron et al.), for phi placement. *)
let frontiers t : int list array =
  let n = Array.length t.idom in
  let df = Array.make n [] in
  let preds = Func.preds_array t.func in
  for b = 0 to n - 1 do
    if reachable t b && List.length preds.(b) >= 2 then
      List.iter
        (fun p ->
          if reachable t p then begin
            let runner = ref p in
            while !runner <> t.idom.(b) do
              if not (List.mem b df.(!runner)) then df.(!runner) <- b :: df.(!runner);
              runner := t.idom.(!runner)
            done
          end)
        preds.(b)
  done;
  df

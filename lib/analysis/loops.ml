(* Natural loops.

   Finds back edges (edges whose target dominates their source), builds
   the natural loop of each header, and pairs the result with the
   lowering-time loop metadata (do/while structure, index variables,
   bounds), which is what the preheader insertion schemes consume.

   Loops are reported innermost-first: the order in which the paper
   hoists checks "to the outermost loop possible" (section 3.3). *)

module Func = Nascent_ir.Func
module Types = Nascent_ir.Types

type loop = {
  header : int;
  blocks : int list; (* includes the header *)
  block_set : bool array; (* indexed by block id *)
  meta : Types.loop_meta option; (* from lowering, when this is a source loop *)
  defined_vids : (int, unit) Hashtbl.t; (* scalars assigned inside the loop *)
  has_store : bool; (* any array store (or call, which may store) inside *)
  depth : int; (* nesting depth, outermost = 1 *)
}

let in_loop l bid = bid < Array.length l.block_set && l.block_set.(bid)

(* The natural loop of back edge(s) into [header]: header plus every
   block that reaches a latch without passing through the header. *)
let natural_loop (f : Func.t) preds header latches =
  let n = Func.num_blocks f in
  let inset = Array.make n false in
  inset.(header) <- true;
  let rec pull b =
    if not inset.(b) then begin
      inset.(b) <- true;
      List.iter pull preds.(b)
    end
  in
  List.iter pull latches;
  inset

let collect_defined (f : Func.t) inset =
  let defined = Hashtbl.create 16 in
  let has_store = ref false in
  Func.iter_blocks
    (fun b ->
      if inset.(b.Types.bid) then
        List.iter
          (fun (i : Types.instr) ->
            match i with
            | Types.Assign (v, _) -> Hashtbl.replace defined v.Types.vid ()
            | Types.Store _ | Types.Call _ -> has_store := true
            | _ -> ())
          b.Types.instrs)
    f;
  (defined, !has_store)

let compute (f : Func.t) : loop list =
  let dom = Dominance.compute f in
  let preds = Func.preds_array f in
  let n = Func.num_blocks f in
  (* back edges grouped by header *)
  let latches_of = Hashtbl.create 8 in
  for b = 0 to n - 1 do
    if Dominance.reachable dom b then
      List.iter
        (fun s ->
          if Dominance.dominates dom s b then
            Hashtbl.replace latches_of s (b :: Option.value ~default:[] (Hashtbl.find_opt latches_of s)))
        (Func.succs f b)
  done;
  let meta_by_header = Hashtbl.create 8 in
  List.iter
    (fun (m : Types.loop_meta) ->
      let h = match m with Types.Ldo d -> d.Types.d_header | Types.Lwhile w -> w.Types.w_header in
      Hashtbl.replace meta_by_header h m)
    f.Func.loops;
  let loops =
    Hashtbl.fold
      (fun header latches acc ->
        let inset = natural_loop f preds header latches in
        let blocks = ref [] in
        Array.iteri (fun i b -> if b then blocks := i :: !blocks) inset;
        let defined_vids, has_store = collect_defined f inset in
        {
          header;
          blocks = !blocks;
          block_set = inset;
          meta = Hashtbl.find_opt meta_by_header header;
          defined_vids;
          has_store;
          depth = 0;
        }
        :: acc)
      latches_of []
  in
  (* Nesting depth = number of loops containing the header; sort
     innermost-first (deepest depth first, ties by smaller size). *)
  let depth_of l =
    List.length
      (List.filter (fun l' -> in_loop l' l.header) loops)
  in
  let with_depth = List.map (fun l -> { l with depth = depth_of l }) loops in
  List.sort
    (fun a b ->
      let c = compare b.depth a.depth in
      if c <> 0 then c else compare (List.length a.blocks) (List.length b.blocks))
    with_depth

(* Is variable [vid] (re)defined inside loop [l]? *)
let defines l vid = Hashtbl.mem l.defined_vids vid

(* The innermost loop (from [loops], innermost-first) containing block
   [bid], if any. *)
let innermost_containing loops bid =
  List.find_opt (fun l -> in_loop l bid) loops

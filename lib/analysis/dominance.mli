(** Dominator computation (Cooper–Harvey–Kennedy iterative algorithm)
    plus dominance frontiers and dominator-tree children.

    Operates on reachable blocks only; unreachable blocks report no
    dominator and dominate nothing. *)

type t

val compute : Nascent_ir.Func.t -> t

val idom : t -> int -> int option
(** Immediate dominator; [Some entry] for the entry block itself,
    [None] for unreachable blocks. *)

val reachable : t -> int -> bool

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b]? Reflexive; false when [b]
    is unreachable. *)

val children : t -> int list array
(** Dominator-tree children, for tree walks (SSA renaming). *)

val frontiers : t -> int list array
(** Dominance frontiers (Cytron et al.), for phi placement. *)

(** Generic iterative bit-vector data-flow solver.

    Both check analyses are {e must} problems (intersection confluence)
    whose per-block transfer is kill-then-gen; the solver takes
    per-block GEN/KILL sets, a direction, and a boundary value, and
    iterates to the maximal fixed point from the optimistic full set.

    Unreachable blocks keep the optimistic value; clients only consult
    reachable blocks. *)

module Bitset = Nascent_support.Bitset

type direction = Forward | Backward

type block_transfer = { gen : Bitset.t; kill : Bitset.t }
(** Transfer [X -> (X \ kill) ∪ gen]. *)

type result = {
  in_ : Bitset.t array;  (** value at each block's entry *)
  out : Bitset.t array;  (** value at each block's exit *)
}

val apply_transfer : block_transfer -> input:Bitset.t -> output:Bitset.t -> unit

val solve :
  Nascent_ir.Func.t ->
  universe:int ->
  direction:direction ->
  boundary:Bitset.t ->
  transfer:block_transfer array ->
  result
(** [boundary] is the value at the entry (forward) or at every exit
    block (backward). [in_]/[out] are named by {e program} position in
    both directions. *)
